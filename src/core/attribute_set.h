// Copyright 2026 The vfps Authors.
// Small ordered sets of attribute ids. These are the "schemas" of the paper:
// the schema of an event, of an access predicate, and of a multi-attribute
// hashing structure are all attribute sets, and schema-based clustering is
// driven by subset tests between them.

#ifndef VFPS_CORE_ATTRIBUTE_SET_H_
#define VFPS_CORE_ATTRIBUTE_SET_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/util/hash.h"
#include "src/util/macros.h"

namespace vfps {

/// An immutable-after-build sorted set of AttributeIds with a 64-bit Bloom
/// signature for fast subset rejection. Subset tests are the hot operation:
/// for every event the matchers must find all hashing structures whose
/// schema is included in the event schema.
class AttributeSet {
 public:
  AttributeSet() = default;

  /// Builds from any list of ids; duplicates are removed.
  explicit AttributeSet(std::vector<AttributeId> ids) : ids_(std::move(ids)) {
    Normalize();
  }
  AttributeSet(std::initializer_list<AttributeId> ids)
      : ids_(ids) {
    Normalize();
  }

  /// Number of attributes in the set.
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Sorted, duplicate-free ids.
  const std::vector<AttributeId>& ids() const { return ids_; }

  /// Membership test (binary search).
  bool Contains(AttributeId a) const {
    return std::binary_search(ids_.begin(), ids_.end(), a);
  }

  /// True iff every attribute of *this occurs in `other`. The Bloom mask
  /// rejects most negatives in one AND; positives fall back to a merge walk.
  bool IsSubsetOf(const AttributeSet& other) const {
    if (ids_.size() > other.ids_.size()) return false;
    if ((bloom_ & other.bloom_) != bloom_) return false;
    return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                         ids_.end());
  }

  /// Adds one attribute (keeps the set sorted). Returns false if present.
  bool Insert(AttributeId a) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), a);
    if (it != ids_.end() && *it == a) return false;
    ids_.insert(it, a);
    bloom_ |= BloomBit(a);
    return true;
  }

  /// Set union.
  AttributeSet Union(const AttributeSet& other) const {
    std::vector<AttributeId> out;
    out.reserve(ids_.size() + other.ids_.size());
    std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                   other.ids_.end(), std::back_inserter(out));
    return AttributeSet(std::move(out));
  }

  bool operator==(const AttributeSet& other) const {
    return ids_ == other.ids_;
  }
  bool operator!=(const AttributeSet& other) const { return !(*this == other); }
  /// Lexicographic order so AttributeSet can key ordered containers.
  bool operator<(const AttributeSet& other) const { return ids_ < other.ids_; }

  /// Stable 64-bit hash of the set contents.
  uint64_t Hash() const {
    uint64_t h = 0x5e7f5e7fULL;
    for (AttributeId a : ids_) h = HashCombine(h, a);
    return h;
  }

  /// Debug representation like "{1,4,7}".
  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(ids_[i]);
    }
    out += "}";
    return out;
  }

 private:
  static uint64_t BloomBit(AttributeId a) { return 1ULL << (a & 63); }

  void Normalize() {
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
    bloom_ = 0;
    for (AttributeId a : ids_) bloom_ |= BloomBit(a);
  }

  std::vector<AttributeId> ids_;
  uint64_t bloom_ = 0;
};

/// std::hash adapter so AttributeSet can key unordered containers.
struct AttributeSetHash {
  size_t operator()(const AttributeSet& s) const {
    return static_cast<size_t>(s.Hash());
  }
};

}  // namespace vfps

#endif  // VFPS_CORE_ATTRIBUTE_SET_H_
