// Copyright 2026 The vfps Authors.
// A predicate is the paper's (attribute, comparison operator, value) triple.

#ifndef VFPS_CORE_PREDICATE_H_
#define VFPS_CORE_PREDICATE_H_

#include <cstdint>
#include <string>

#include "src/core/types.h"
#include "src/util/hash.h"

namespace vfps {

/// The six comparison operators of the subscription language (Section 1.1).
enum class RelOp : uint8_t {
  kLt = 0,  // event value <  predicate value
  kLe = 1,  // event value <= predicate value
  kEq = 2,  // event value == predicate value
  kNe = 3,  // event value != predicate value
  kGe = 4,  // event value >= predicate value
  kGt = 5,  // event value >  predicate value
};

/// Short symbol for `op` ("<", "<=", "=", "!=", ">=", ">").
const char* RelOpToString(RelOp op);

/// One (attribute, operator, value) condition. An event pair (a', v')
/// matches the predicate iff a' == attribute and `v' op value` holds.
struct Predicate {
  AttributeId attribute = kInvalidAttributeId;
  RelOp op = RelOp::kEq;
  Value value = 0;

  Predicate() = default;
  Predicate(AttributeId a, RelOp o, Value v) : attribute(a), op(o), value(v) {}

  /// True iff this is an equality predicate. Equality predicates are the
  /// only ones usable inside access predicates (Section 3.1).
  bool IsEquality() const { return op == RelOp::kEq; }

  /// Evaluates the comparison against an event value for this attribute.
  bool Matches(Value event_value) const {
    switch (op) {
      case RelOp::kLt:
        return event_value < value;
      case RelOp::kLe:
        return event_value <= value;
      case RelOp::kEq:
        return event_value == value;
      case RelOp::kNe:
        return event_value != value;
      case RelOp::kGe:
        return event_value >= value;
      case RelOp::kGt:
        return event_value > value;
    }
    return false;
  }

  bool operator==(const Predicate& o) const {
    return attribute == o.attribute && op == o.op && value == o.value;
  }
  bool operator!=(const Predicate& o) const { return !(*this == o); }
  /// Orders by (attribute, op, value); canonical subscription order.
  bool operator<(const Predicate& o) const {
    if (attribute != o.attribute) return attribute < o.attribute;
    if (op != o.op) return op < o.op;
    return value < o.value;
  }

  /// Stable 64-bit content hash, used by PredicateTable interning.
  uint64_t Hash() const {
    uint64_t h = Mix64(attribute);
    h = HashCombine(h, static_cast<uint64_t>(op));
    h = HashCombine(h, static_cast<uint64_t>(value));
    return h;
  }

  /// Debug representation like "a3 <= 17".
  std::string ToString() const;
};

/// std::hash adapter for unordered containers keyed by Predicate.
struct PredicateHash {
  size_t operator()(const Predicate& p) const {
    return static_cast<size_t>(p.Hash());
  }
};

}  // namespace vfps

#endif  // VFPS_CORE_PREDICATE_H_
