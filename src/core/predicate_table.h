// Copyright 2026 The vfps Authors.
// Interning table for predicates. Every distinct predicate in the system is
// stored once and given a dense PredicateId, which doubles as its slot in
// the predicate result vector (Figure 1 of the paper associates each
// indexed predicate with a single bit-vector entry). Reference counts track
// how many subscriptions use each predicate so that indexes are updated only
// when a predicate enters or leaves the system (§2.3, footnote 3).

#ifndef VFPS_CORE_PREDICATE_TABLE_H_
#define VFPS_CORE_PREDICATE_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/predicate.h"
#include "src/core/types.h"
#include "src/util/macros.h"

namespace vfps {

/// Deduplicating predicate store with reference counting and id recycling.
class PredicateTable {
 public:
  /// Result of Intern(): the id plus whether this call created the entry
  /// (in which case the caller must insert the predicate into the indexes).
  struct InternResult {
    PredicateId id;
    bool inserted;
  };

  /// Adds one reference to `p`, creating an entry if none exists.
  InternResult Intern(const Predicate& p);

  /// Drops one reference to `id`. Returns true when the last reference was
  /// dropped; the caller must then remove the predicate from the indexes
  /// (the slot is recycled by subsequent Intern calls).
  bool Release(PredicateId id);

  /// Like Release, but on the last drop the id is parked as *detached*
  /// instead of joining the free list, so Intern cannot hand it out again
  /// yet. The churn matcher releases ids this way and recycles them
  /// through the epoch limbo list: a concurrent reader may still hold a
  /// snapshot whose result vector has the old predicate's bit set, and
  /// reusing the id before that snapshot drains would false-match the new
  /// predicate. Returns true on the last drop.
  bool ReleaseKeepId(PredicateId id);

  /// Moves a detached id (see ReleaseKeepId) onto the free list. Called
  /// from an epoch deleter once no reader can observe the old id.
  void RecycleId(PredicateId id);

  /// Id of `p` if interned, kInvalidPredicateId otherwise.
  PredicateId Lookup(const Predicate& p) const;

  /// The predicate stored at `id`. Requires a live id.
  const Predicate& Get(PredicateId id) const {
    VFPS_DCHECK(id < slots_.size() && slots_[id].refcount > 0);
    return slots_[id].predicate;
  }

  /// Reference count of `id` (0 for a recycled slot).
  uint32_t RefCount(PredicateId id) const {
    VFPS_DCHECK(id < slots_.size());
    return slots_[id].refcount;
  }

  /// One past the largest id ever assigned; the required result-vector size.
  size_t capacity() const { return slots_.size(); }

  /// Number of live (refcount > 0) predicates.
  size_t live_count() const { return live_count_; }

  /// Approximate heap footprint in bytes (for the Figure 3(c) experiment).
  size_t MemoryUsage() const;

  /// Validates the interning invariants: by_content_ maps exactly the
  /// live slots (matching content, refcount > 0), the free list holds
  /// exactly the dead slots once each, and live_count() agrees with both.
  /// Prints the first violation and returns false.
  bool CheckInvariants() const;

 private:
  struct Slot {
    Predicate predicate;
    uint32_t refcount = 0;
    /// Dead but not yet reusable (ReleaseKeepId happened, RecycleId has
    /// not). Dead slots are on the free list XOR detached.
    bool detached = false;
  };

  std::unordered_map<Predicate, PredicateId, PredicateHash> by_content_;
  std::vector<Slot> slots_;
  std::vector<PredicateId> free_ids_;
  size_t live_count_ = 0;
};

}  // namespace vfps

#endif  // VFPS_CORE_PREDICATE_TABLE_H_
