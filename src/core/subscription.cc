// Copyright 2026 The vfps Authors.

#include "src/core/subscription.h"

#include <algorithm>

#include "src/util/macros.h"

namespace vfps {

Subscription Subscription::Create(SubscriptionId id,
                                  std::vector<Predicate> predicates) {
  Subscription s;
  s.id_ = id;
  std::sort(predicates.begin(), predicates.end());
  predicates.erase(std::unique(predicates.begin(), predicates.end()),
                   predicates.end());
  s.predicates_ = std::move(predicates);

  std::vector<AttributeId> eq_attrs;
  std::vector<AttributeId> all_attrs;
  for (const Predicate& p : s.predicates_) {
    all_attrs.push_back(p.attribute);
    if (p.IsEquality()) {
      s.equality_predicates_.push_back(p);
      eq_attrs.push_back(p.attribute);
    }
  }
  s.equality_attributes_ = AttributeSet(std::move(eq_attrs));
  s.attributes_ = AttributeSet(std::move(all_attrs));
  return s;
}

Value Subscription::EqualityValue(AttributeId attribute) const {
  for (const Predicate& p : equality_predicates_) {
    if (p.attribute == attribute) return p.value;
  }
  VFPS_CHECK(false);  // caller must ensure the attribute has an = predicate
  return 0;
}

bool Subscription::Matches(const Event& event) const {
  for (const Predicate& p : predicates_) {
    std::optional<Value> v = event.Find(p.attribute);
    if (!v.has_value() || !p.Matches(*v)) return false;
  }
  return true;
}

std::string Subscription::ToString() const {
  std::string out = "s" + std::to_string(id_) + ":";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    out += (i == 0) ? " " : " AND ";
    out += predicates_[i].ToString();
  }
  return out;
}

}  // namespace vfps
