// Copyright 2026 The vfps Authors.
// Maps human-readable attribute names and string values to the dense
// integer ids / integer values the matching engine operates on. This is the
// friendly front door used by the examples and the Broker; the core engine
// never sees strings.

#ifndef VFPS_CORE_SCHEMA_REGISTRY_H_
#define VFPS_CORE_SCHEMA_REGISTRY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/types.h"
#include "src/util/status.h"

namespace vfps {

/// Bidirectional name <-> id mapping for attributes, plus interning of
/// string attribute values into integer Values.
///
/// String values are assigned ids in first-seen order, so `=` and `!=`
/// behave exactly as string equality. Range operators over interned strings
/// compare interning order, not lexicographic order; applications needing
/// ordered string semantics should map values themselves.
class SchemaRegistry {
 public:
  /// Id for `name`, creating a fresh attribute on first use.
  AttributeId InternAttribute(std::string_view name);

  /// Id for `name` if known, kInvalidAttributeId otherwise.
  AttributeId FindAttribute(std::string_view name) const;

  /// Name of `id`. Requires a previously interned id.
  const std::string& AttributeName(AttributeId id) const;

  /// Number of distinct attributes interned (the paper's n_t).
  size_t attribute_count() const { return attribute_names_.size(); }

  /// Integer value standing for string value `text`, interned on first use.
  Value InternValue(std::string_view text);

  /// Integer for `text` if interned; NotFound otherwise. Useful for events:
  /// a string value never seen in any subscription cannot match any
  /// equality predicate.
  Result<Value> FindValue(std::string_view text) const;

  /// The string interned as `value`, or empty if `value` was never interned
  /// (e.g. it is a plain numeric value).
  const std::string& ValueText(Value value) const;

 private:
  std::unordered_map<std::string, AttributeId> attribute_ids_;
  std::vector<std::string> attribute_names_;
  std::unordered_map<std::string, Value> value_ids_;
  std::vector<std::string> value_texts_;
};

}  // namespace vfps

#endif  // VFPS_CORE_SCHEMA_REGISTRY_H_
