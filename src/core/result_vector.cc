// Copyright 2026 The vfps Authors.
// ResultVector is header-only; this translation unit exists so the build
// fails fast if the header stops compiling standalone.

#include "src/core/result_vector.h"
