// Copyright 2026 The vfps Authors.
// SSE2 cluster kernels: the x86-64 baseline variant. The per-event row
// groups pack 8 scalar cell loads into one 128-bit register and derive the
// survivor mask with a byte-compare + movemask (cells may hold any nonzero
// value, so a compare against zero is used rather than arithmetic tricks);
// the batch stripe AND runs on 128-bit words. Compiled with the default
// flags — SSE2 is architectural on x86-64.

#include "src/cluster/kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include "src/cluster/kernels_vector.h"

namespace vfps {
namespace {

struct Sse2Ops {
  static inline uint32_t MatchRows8(const uint8_t* rv,
                                    const PredicateId* const* cols, size_t n,
                                    size_t j) {
    uint32_t mask = 0xFF;
    for (size_t c = 0; c < n; ++c) {
      const PredicateId* idx = cols[c] + j;
      uint64_t packed = 0;
      for (int i = 0; i < 8; ++i) {
        packed |= static_cast<uint64_t>(rv[idx[i]]) << (8 * i);
      }
      const __m128i cells =
          _mm_cvtsi64_si128(static_cast<long long>(packed));
      const uint32_t zero_bytes = static_cast<uint32_t>(_mm_movemask_epi8(
                                      _mm_cmpeq_epi8(cells,
                                                     _mm_setzero_si128()))) &
                                  0xFF;
      mask &= ~zero_bytes;
      if (mask == 0) return 0;
    }
    return mask;
  }

  // movemask over byte-compare against zero: all-zero iff every byte of
  // `v` is zero.
  static inline bool AllZero(__m128i v) {
    return _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_setzero_si128())) ==
           0xFFFF;
  }

  template <size_t W>
  static inline bool RowSurvives(const BatchResultVector& block,
                                 const uint64_t* alive,
                                 const PredicateId* const* cols, size_t n,
                                 size_t j, uint64_t* m) {
    static_assert(W >= 1 && W <= 4);
    if constexpr (W == 1) {
      uint64_t v = alive[0];
      for (size_t c = 0; c < n; ++c) {
        v &= block.stripe(cols[c][j])[0];
        if (v == 0) return false;
      }
      m[0] = v;
      return true;
    } else {
      // The lane mask stays in xmm registers across the column loop: one
      // 128-bit AND per word pair, the odd tail word scalar. Never loads
      // past W words — stripes are packed back to back in the block.
      __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(alive));
      __m128i hi = _mm_setzero_si128();
      uint64_t tail = 0;
      if constexpr (W == 4) {
        hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(alive + 2));
      } else if constexpr (W == 3) {
        tail = alive[2];
      }
      for (size_t c = 0; c < n; ++c) {
        const uint64_t* stripe = block.stripe(cols[c][j]);
        lo = _mm_and_si128(
            lo, _mm_loadu_si128(reinterpret_cast<const __m128i*>(stripe)));
        if constexpr (W == 4) {
          hi = _mm_and_si128(
              hi,
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(stripe + 2)));
          if (AllZero(_mm_or_si128(lo, hi))) return false;
        } else if constexpr (W == 3) {
          tail &= stripe[2];
          if (tail == 0 && AllZero(lo)) return false;
        } else {
          if (AllZero(lo)) return false;
        }
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(m), lo);
      if constexpr (W == 4) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(m + 2), hi);
      } else if constexpr (W == 3) {
        m[2] = tail;
      }
      return true;
    }
  }
};

using Kernels = vector_kernels::VectorKernels<Sse2Ops>;

constexpr ClusterKernels kSse2Kernels{SimdIsa::kSse2, &Kernels::MatchEntry,
                                      &Kernels::MatchBatchEntry};

}  // namespace

namespace internal {

const ClusterKernels* GetSse2ClusterKernels() { return &kSse2Kernels; }

}  // namespace internal

}  // namespace vfps

#else  // !defined(__SSE2__)

namespace vfps {
namespace internal {

const ClusterKernels* GetSse2ClusterKernels() { return nullptr; }

}  // namespace internal
}  // namespace vfps

#endif  // defined(__SSE2__)
