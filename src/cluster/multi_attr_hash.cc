// Copyright 2026 The vfps Authors.

#include "src/cluster/multi_attr_hash.h"

#include <cstdio>

#include "src/util/hash.h"
#include "src/util/macros.h"

/// Reports the first violated invariant (with context) and returns false
/// from the enclosing CheckInvariants. Local to invariant walks.
#define VFPS_INVARIANT(cond, ...)             \
  do {                                        \
    if (!(cond)) {                            \
      std::fprintf(stderr, __VA_ARGS__);      \
      std::fprintf(stderr, " [%s]\n", #cond); \
      return false;                           \
    }                                         \
  } while (0)

namespace vfps {

size_t MultiAttrHashTable::KeyHash::operator()(
    const std::vector<Value>& key) const {
  uint64_t h = 0x9ae16a3b2f090000ULL ^ key.size();
  for (Value v : key) h = HashCombine(h, static_cast<uint64_t>(v));
  return static_cast<size_t>(h);
}

bool MultiAttrHashTable::ExtractKey(const Event& event,
                                    std::vector<Value>* key) const {
  key->clear();
  for (AttributeId a : schema_.ids()) {
    std::optional<Value> v = event.Find(a);
    if (!v.has_value()) return false;
    key->push_back(*v);
  }
  return true;
}

void MultiAttrHashTable::ExtractKey(const Subscription& s,
                                    std::vector<Value>* key) const {
  key->clear();
  for (AttributeId a : schema_.ids()) {
    VFPS_DCHECK(s.equality_attributes().Contains(a));
    key->push_back(s.EqualityValue(a));
  }
}

ClusterList* MultiAttrHashTable::Probe(const std::vector<Value>& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

const ClusterList* MultiAttrHashTable::Probe(
    const std::vector<Value>& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

ClusterSlot MultiAttrHashTable::Add(const std::vector<Value>& key,
                                    SubscriptionId id,
                                    std::span<const PredicateId> slots) {
  ClusterSlot slot = entries_[key].Add(id, slots);
  ++subscription_count_;
  VFPS_DCHECK_INVARIANT(CheckInvariants());
  return slot;
}

SubscriptionId MultiAttrHashTable::Remove(const std::vector<Value>& key,
                                          ClusterSlot slot) {
  auto it = entries_.find(key);
  VFPS_CHECK(it != entries_.end());
  SubscriptionId moved = it->second.Remove(slot);
  --subscription_count_;
  if (it->second.empty()) entries_.erase(it);
  VFPS_DCHECK_INVARIANT(CheckInvariants());
  return moved;
}

bool MultiAttrHashTable::CheckInvariants() const {
  size_t total = 0;
  for (const auto& [key, list] : entries_) {
    VFPS_INVARIANT(key.size() == schema_.size(),
                   "MultiAttrHashTable: key of arity %zu in a table with "
                   "schema arity %zu",
                   key.size(), schema_.size());
    VFPS_INVARIANT(!list.empty(),
                   "MultiAttrHashTable: empty cluster list retained "
                   "(access-predicate necessity: Remove must drop the "
                   "entry)");
    if (!list.CheckInvariants()) return false;
    total += list.subscription_count();
  }
  VFPS_INVARIANT(total == subscription_count_,
                 "MultiAttrHashTable: entries hold %zu subscriptions, "
                 "|H| counter is %zu",
                 total, subscription_count_);
  return true;
}

size_t MultiAttrHashTable::MemoryUsage() const {
  size_t total = entries_.bucket_count() * sizeof(void*);
  for (const auto& [key, list] : entries_) {
    total += key.capacity() * sizeof(Value) + sizeof(ClusterList) +
             list.MemoryUsage() + 2 * sizeof(void*);
  }
  return total;
}

}  // namespace vfps
