// Copyright 2026 The vfps Authors.

#include "src/cluster/multi_attr_hash.h"

#include "src/util/hash.h"
#include "src/util/macros.h"

namespace vfps {

size_t MultiAttrHashTable::KeyHash::operator()(
    const std::vector<Value>& key) const {
  uint64_t h = 0x9ae16a3b2f090000ULL ^ key.size();
  for (Value v : key) h = HashCombine(h, static_cast<uint64_t>(v));
  return static_cast<size_t>(h);
}

bool MultiAttrHashTable::ExtractKey(const Event& event,
                                    std::vector<Value>* key) const {
  key->clear();
  for (AttributeId a : schema_.ids()) {
    std::optional<Value> v = event.Find(a);
    if (!v.has_value()) return false;
    key->push_back(*v);
  }
  return true;
}

void MultiAttrHashTable::ExtractKey(const Subscription& s,
                                    std::vector<Value>* key) const {
  key->clear();
  for (AttributeId a : schema_.ids()) {
    VFPS_DCHECK(s.equality_attributes().Contains(a));
    key->push_back(s.EqualityValue(a));
  }
}

ClusterList* MultiAttrHashTable::Probe(const std::vector<Value>& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

const ClusterList* MultiAttrHashTable::Probe(
    const std::vector<Value>& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

ClusterSlot MultiAttrHashTable::Add(const std::vector<Value>& key,
                                    SubscriptionId id,
                                    std::span<const PredicateId> slots) {
  ClusterSlot slot = entries_[key].Add(id, slots);
  ++subscription_count_;
  return slot;
}

SubscriptionId MultiAttrHashTable::Remove(const std::vector<Value>& key,
                                          ClusterSlot slot) {
  auto it = entries_.find(key);
  VFPS_CHECK(it != entries_.end());
  SubscriptionId moved = it->second.Remove(slot);
  --subscription_count_;
  if (it->second.empty()) entries_.erase(it);
  return moved;
}

size_t MultiAttrHashTable::MemoryUsage() const {
  size_t total = entries_.bucket_count() * sizeof(void*);
  for (const auto& [key, list] : entries_) {
    total += key.capacity() * sizeof(Value) + sizeof(ClusterList) +
             list.MemoryUsage() + 2 * sizeof(void*);
  }
  return total;
}

}  // namespace vfps
