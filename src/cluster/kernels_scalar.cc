// Copyright 2026 The vfps Authors.
// The scalar (portable reference) cluster kernels, moved verbatim from the
// original cluster.cc: the paper's Section 2.2 scan, specialized per size
// N with UNFOLD-wide unrolled stripes and prefetch at stripe boundaries.
// Every vector variant (kernels_sse2/avx2/neon.cc) is differentially
// verified against this table.

#include <algorithm>
#include <bit>

#include "src/cluster/cluster.h"
#include "src/cluster/kernels.h"
#include "src/util/prefetch.h"

namespace vfps {
namespace {

/// Tests row `j`: true iff all N column cells are set. Short-circuits in
/// column order, so columns are laid out equality-first by the matchers.
template <int N>
inline bool RowMatches(const uint8_t* rv, const PredicateId* const* cols,
                       size_t j) {
  if constexpr (N == 0) {
    return true;
  } else {
    return rv[cols[0][j]] != 0 && RowMatches<N - 1>(rv, cols + 1, j);
  }
}

/// Issues prefetches for the stripe LOOKAHEAD entries ahead of `j`, for the
/// first min(N, kMaxPrefetchColumns) columns. Prefetching past the end of a
/// column is harmless (advisory instruction, never faults).
template <int N>
inline void PrefetchStripe(const PredicateId* const* cols, size_t j) {
  constexpr size_t kCols =
      static_cast<size_t>(N) < kMaxPrefetchColumns ? static_cast<size_t>(N)
                                                   : kMaxPrefetchColumns;
  for (size_t c = 0; c < kCols; ++c) {
    PrefetchRead(cols[c] + j + kClusterLookahead);
  }
}

/// The cluster matching kernel of Section 2.2, specialized per size N and
/// per prefetch mode: an outer loop over UNFOLD-wide stripes with prefetch
/// instructions at stripe boundaries, plus a remainder loop (footnote 2).
template <int N, bool kPrefetch>
void MatchKernel(const uint8_t* rv, const PredicateId* const* cols,
                 const SubscriptionId* ids, size_t count,
                 std::vector<SubscriptionId>* out) {
  size_t j = 0;
  const size_t full = count - count % kClusterUnfold;
  for (; j < full; j += kClusterUnfold) {
    for (size_t k = j; k < j + kClusterUnfold; ++k) {
      if (RowMatches<N>(rv, cols, k)) out->push_back(ids[k]);
    }
    if constexpr (kPrefetch) PrefetchStripe<N>(cols, j);
  }
  for (; j < count; ++j) {
    if (RowMatches<N>(rv, cols, j)) out->push_back(ids[j]);
  }
}

/// Generic kernel for subscriptions with more than kMaxSpecializedSize
/// predicates: the column loop is a runtime loop ("A generic method is more
/// time consuming because it needs an additional loop", Section 2.2).
template <bool kPrefetch>
void GenericMatchKernel(const uint8_t* rv, const PredicateId* const* cols,
                        size_t n, const SubscriptionId* ids, size_t count,
                        std::vector<SubscriptionId>* out) {
  const size_t prefetch_cols = std::min(n, kMaxPrefetchColumns);
  size_t j = 0;
  const size_t full = count - count % kClusterUnfold;
  for (; j < full; j += kClusterUnfold) {
    for (size_t k = j; k < j + kClusterUnfold; ++k) {
      bool ok = true;
      for (size_t c = 0; c < n && ok; ++c) ok = rv[cols[c][k]] != 0;
      if (ok) out->push_back(ids[k]);
    }
    if constexpr (kPrefetch) {
      for (size_t c = 0; c < prefetch_cols; ++c) {
        PrefetchRead(cols[c] + j + kClusterLookahead);
      }
    }
  }
  for (; j < count; ++j) {
    bool ok = true;
    for (size_t c = 0; c < n && ok; ++c) ok = rv[cols[c][j]] != 0;
    if (ok) out->push_back(ids[j]);
  }
}

/// Tests one row against all batch lanes at once: starts from the alive
/// mask and ANDs in each column's lane stripe, short-circuiting the column
/// loop as soon as no lane survives (the batch generalization of
/// RowMatches' equality-first short circuit). Surviving bits are the lanes
/// this row matches. W is the stripe width in 64-bit words.
template <size_t W>
inline void TestBatchRow(const BatchResultVector& block,
                         const uint64_t* alive,
                         const PredicateId* const* cols, size_t n,
                         SubscriptionId id, size_t j, size_t lane_base,
                         BatchResult* out) {
  uint64_t m[W];
  for (size_t w = 0; w < W; ++w) m[w] = alive[w];
  for (size_t c = 0; c < n; ++c) {
    const uint64_t* stripe = block.stripe(cols[c][j]);
    uint64_t any = 0;
    for (size_t w = 0; w < W; ++w) {
      m[w] &= stripe[w];
      any |= m[w];
    }
    if (any == 0) return;
  }
  for (size_t w = 0; w < W; ++w) {
    uint64_t bits = m[w];
    while (bits != 0) {
      const size_t lane = w * 64 + static_cast<size_t>(std::countr_zero(bits));
      out->Append(lane_base + lane, id);
      bits &= bits - 1;
    }
  }
}

/// The batched cluster kernel: one pass over the columns serves every lane
/// of the batch. Keeps the per-event kernel's UNFOLD stripes and prefetch
/// cadence (the column layout and lookahead are identical); the column
/// loop is a runtime loop since the stripe ANDing already amortizes the
/// loop overhead across up to 256 lanes.
template <size_t W, bool kPrefetch>
void BatchMatchKernel(const BatchResultVector& block, const uint64_t* alive,
                      const PredicateId* const* cols, size_t n,
                      const SubscriptionId* ids, size_t count,
                      size_t lane_base, BatchResult* out) {
  const size_t prefetch_cols = std::min(n, kMaxPrefetchColumns);
  size_t j = 0;
  const size_t full = count - count % kClusterUnfold;
  for (; j < full; j += kClusterUnfold) {
    for (size_t k = j; k < j + kClusterUnfold; ++k) {
      TestBatchRow<W>(block, alive, cols, n, ids[k], k, lane_base, out);
    }
    if constexpr (kPrefetch) {
      for (size_t c = 0; c < prefetch_cols; ++c) {
        PrefetchRead(cols[c] + j + kClusterLookahead);
      }
    }
  }
  for (; j < count; ++j) {
    TestBatchRow<W>(block, alive, cols, n, ids[j], j, lane_base, out);
  }
}

template <bool kPrefetch>
void BatchDispatch(const BatchResultVector& block, const uint64_t* alive,
                   const PredicateId* const* cols, size_t n,
                   const SubscriptionId* ids, size_t count, size_t lane_base,
                   BatchResult* out) {
  switch (block.words_per_lane()) {
    case 1:
      return BatchMatchKernel<1, kPrefetch>(block, alive, cols, n, ids,
                                            count, lane_base, out);
    case 2:
      return BatchMatchKernel<2, kPrefetch>(block, alive, cols, n, ids,
                                            count, lane_base, out);
    case 3:
      return BatchMatchKernel<3, kPrefetch>(block, alive, cols, n, ids,
                                            count, lane_base, out);
    case 4:
      return BatchMatchKernel<4, kPrefetch>(block, alive, cols, n, ids,
                                            count, lane_base, out);
    default:
      VFPS_CHECK(false);  // BatchResultVector::kMaxLanes caps width at 4
  }
}

template <bool kPrefetch>
void Dispatch(uint32_t n, const uint8_t* rv, const PredicateId* const* cols,
              const SubscriptionId* ids, size_t count,
              std::vector<SubscriptionId>* out) {
  switch (n) {
    case 1:
      return MatchKernel<1, kPrefetch>(rv, cols, ids, count, out);
    case 2:
      return MatchKernel<2, kPrefetch>(rv, cols, ids, count, out);
    case 3:
      return MatchKernel<3, kPrefetch>(rv, cols, ids, count, out);
    case 4:
      return MatchKernel<4, kPrefetch>(rv, cols, ids, count, out);
    case 5:
      return MatchKernel<5, kPrefetch>(rv, cols, ids, count, out);
    case 6:
      return MatchKernel<6, kPrefetch>(rv, cols, ids, count, out);
    case 7:
      return MatchKernel<7, kPrefetch>(rv, cols, ids, count, out);
    case 8:
      return MatchKernel<8, kPrefetch>(rv, cols, ids, count, out);
    case 9:
      return MatchKernel<9, kPrefetch>(rv, cols, ids, count, out);
    case 10:
      return MatchKernel<10, kPrefetch>(rv, cols, ids, count, out);
    default:
      return GenericMatchKernel<kPrefetch>(rv, cols, n, ids, count, out);
  }
}

void ScalarMatch(uint32_t n, const uint8_t* rv,
                 const PredicateId* const* cols, const SubscriptionId* ids,
                 size_t count, bool use_prefetch,
                 std::vector<SubscriptionId>* out) {
  if (use_prefetch) {
    Dispatch<true>(n, rv, cols, ids, count, out);
  } else {
    Dispatch<false>(n, rv, cols, ids, count, out);
  }
}

void ScalarMatchBatch(const BatchResultVector& block, const uint64_t* alive,
                      const PredicateId* const* cols, size_t n,
                      const SubscriptionId* ids, size_t count,
                      size_t lane_base, bool use_prefetch, BatchResult* out) {
  if (use_prefetch) {
    BatchDispatch<true>(block, alive, cols, n, ids, count, lane_base, out);
  } else {
    BatchDispatch<false>(block, alive, cols, n, ids, count, lane_base, out);
  }
}

constexpr ClusterKernels kScalarKernels{SimdIsa::kScalar, &ScalarMatch,
                                        &ScalarMatchBatch};

}  // namespace

namespace internal {

const ClusterKernels* GetScalarClusterKernels() { return &kScalarKernels; }

}  // namespace internal

}  // namespace vfps
