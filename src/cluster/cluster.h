// Copyright 2026 The vfps Authors.
// A subscription cluster: the paper's columnar storage for subscriptions of
// equal size (Figure 1). A cluster of size n holds n predicate columns —
// column i, row j is the result-vector slot of the i-th residual predicate
// of the j-th subscription — plus a "subscription line" of ids. The match
// kernel tests rows against the result vector with an UNFOLD-wide unrolled
// loop and asynchronous prefetch of upcoming column stripes (Section 2.2).

#ifndef VFPS_CLUSTER_CLUSTER_H_
#define VFPS_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/batch_result.h"
#include "src/core/batch_result_vector.h"
#include "src/core/types.h"
#include "src/util/macros.h"

namespace vfps {

/// Number of column entries per cache line; the kernels' UNFOLD value.
inline constexpr size_t kClusterUnfold = 16;  // 64-byte line / 4-byte entry

/// Prefetch distance in column entries (stripes are fetched this far ahead
/// of the scan position so the transfer overlaps computation).
inline constexpr size_t kClusterLookahead = 4 * kClusterUnfold;

/// Columns beyond this index are never prefetched: prefetch slots are a
/// scarce resource and late columns are rarely consulted thanks to the
/// short-circuit evaluation (Section 2.2, "Cache Performance").
inline constexpr size_t kMaxPrefetchColumns = 4;

/// A columnar group of same-size subscriptions.
class Cluster {
 public:
  /// Creates an empty cluster for subscriptions with `size` residual
  /// predicates. size == 0 is legal: such subscriptions match whenever the
  /// cluster's access predicate holds.
  explicit Cluster(uint32_t size);

  /// Number of residual predicates per subscription.
  uint32_t size() const { return size_; }

  /// Number of subscriptions currently stored.
  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Appends a subscription. `slots` are the result-vector slots of its
  /// residual predicates, already ordered equality-first (so inequality
  /// cells are only read when the equalities held). Returns the row index.
  size_t Add(SubscriptionId id, std::span<const PredicateId> slots);

  /// Removes the subscription at `row` by swapping the last row into it.
  /// Returns the id that now occupies `row`, or kInvalidSubscriptionId if
  /// `row` was the last row. Callers use the return value to patch their
  /// subscription -> location maps.
  SubscriptionId RemoveAt(size_t row);

  /// Subscription id stored at `row`.
  SubscriptionId id_at(size_t row) const {
    VFPS_DCHECK(row < count_);
    return ids_[row];
  }

  /// Result-vector slot of residual predicate `col` of row `row`.
  PredicateId slot_at(size_t row, size_t col) const {
    VFPS_DCHECK(row < count_ && col < size_);
    return columns_[col * capacity_ + row];
  }

  /// Appends to `out` the ids of all subscriptions whose every residual
  /// predicate is satisfied in `results` (the raw result-vector cells).
  /// `use_prefetch` selects the paper's "propagation-wp" kernels. The scan
  /// runs on the active SIMD kernel variant (src/cluster/kernels.h);
  /// `results` must stay readable for kSimdGatherSlack bytes past the last
  /// addressable cell (ResultVector pads automatically; raw buffers must
  /// over-allocate by that much).
  void Match(const uint8_t* results, bool use_prefetch,
             std::vector<SubscriptionId>* out) const;

  /// Batch analogue of Match: tests every row against *all* batch lanes in
  /// one column scan. `alive` is a lane mask (block.words_per_lane() words)
  /// of the batch events this cluster is a candidate for; a row matches
  /// lane e iff bit e survives ANDing the row's column stripes from
  /// `block`. Matching ids are appended to out lane `lane_base + e`.
  void MatchBatch(const BatchResultVector& block, const uint64_t* alive,
                  bool use_prefetch, size_t lane_base,
                  BatchResult* out) const;

  /// Number of rows tested by Match (== count()); exposed for the cost
  /// accounting in benches and the cost model calibration.
  size_t rows_checked_per_match() const { return count_; }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const {
    return columns_.capacity() * sizeof(PredicateId) +
           ids_.capacity() * sizeof(SubscriptionId);
  }

  /// Validates the columnar-layout invariants (§2.2 / Figure 1): counter
  /// and storage-size agreement, column stride == capacity, and unique,
  /// valid subscription ids. O(count); prints the first violation to
  /// stderr and returns false. Mutators self-check under
  /// VFPS_DEBUG_INVARIANTS builds; tests may call this in any build.
  bool CheckInvariants() const;

 private:
  void Grow(size_t min_capacity);

  uint32_t size_;      // predicates per subscription (columns)
  size_t count_ = 0;   // rows in use
  size_t capacity_ = 0;  // rows allocated (column stride)
  // Column-major: column c occupies [c * capacity_, c * capacity_ + count_).
  std::vector<PredicateId> columns_;
  std::vector<SubscriptionId> ids_;
};

}  // namespace vfps

#endif  // VFPS_CLUSTER_CLUSTER_H_
