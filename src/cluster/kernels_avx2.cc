// Copyright 2026 The vfps Authors.
// AVX2 cluster kernels. The per-event row groups load 8 column indices with
// one 256-bit load and fetch their result-vector cells with a single
// vpgatherdd at byte scale — this reads a 32-bit word at each cell address,
// hence the kSimdGatherSlack padding contract on rv buffers. Survivors are
// tracked as 32-bit lanes (0 or ~0) so the column loop can early-exit with
// one vptest and extract the final mask with one movemask. The batch
// stripe AND covers the full 256-lane stripe (W=4) with a single 256-bit
// AND + vptest.
//
// This TU is compiled with per-file -mavx2 (src/CMakeLists.txt) so the
// rest of the binary stays portable; it is only entered when cpuid
// reported AVX2 (src/util/simd.cc), and compiles to a nullptr stub when
// the build cannot express AVX2.

#include "src/cluster/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "src/cluster/kernels_vector.h"

namespace vfps {
namespace {

struct Avx2Ops {
  static inline uint32_t MatchRows8(const uint8_t* rv,
                                    const PredicateId* const* cols, size_t n,
                                    size_t j) {
    const __m256i byte_mask = _mm256_set1_epi32(0xFF);
    __m256i acc = _mm256_set1_epi32(-1);
    for (size_t c = 0; c < n; ++c) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cols[c] + j));
      // Gather a 32-bit word at rv + idx (scale 1): byte 0 is the cell,
      // the 3 over-read bytes are masked off below.
      const __m256i cells = _mm256_and_si256(
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(rv), idx,
                                 /*scale=*/1),
          byte_mask);
      acc = _mm256_andnot_si256(
          _mm256_cmpeq_epi32(cells, _mm256_setzero_si256()), acc);
      if (_mm256_testz_si256(acc, acc)) return 0;
    }
    return static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(acc)));
  }

  template <size_t W>
  static inline bool RowSurvives(const BatchResultVector& block,
                                 const uint64_t* alive,
                                 const PredicateId* const* cols, size_t n,
                                 size_t j, uint64_t* m) {
    static_assert(W >= 1 && W <= 4);
    if constexpr (W == 1) {
      uint64_t v = alive[0];
      for (size_t c = 0; c < n; ++c) {
        v &= block.stripe(cols[c][j])[0];
        if (v == 0) return false;
      }
      m[0] = v;
      return true;
    } else if constexpr (W == 4) {
      // The full 256-lane mask lives in one ymm register for the whole
      // column loop: one 256-bit AND + vptest per column.
      __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(alive));
      for (size_t c = 0; c < n; ++c) {
        v = _mm256_and_si256(
            v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                   block.stripe(cols[c][j]))));
        if (_mm256_testz_si256(v, v)) return false;
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(m), v);
      return true;
    } else {
      // W == 2 or 3: one xmm register plus a scalar tail word. A 256-bit
      // load would read past the stripe (stripes are packed back to back).
      __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(alive));
      uint64_t tail = W == 3 ? alive[2] : 0;
      for (size_t c = 0; c < n; ++c) {
        const uint64_t* stripe = block.stripe(cols[c][j]);
        v = _mm_and_si128(
            v, _mm_loadu_si128(reinterpret_cast<const __m128i*>(stripe)));
        if constexpr (W == 3) {
          tail &= stripe[2];
          if (_mm_testz_si128(v, v) && tail == 0) return false;
        } else {
          if (_mm_testz_si128(v, v)) return false;
        }
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(m), v);
      if constexpr (W == 3) m[2] = tail;
      return true;
    }
  }
};

using Kernels = vector_kernels::VectorKernels<Avx2Ops>;

constexpr ClusterKernels kAvx2Kernels{SimdIsa::kAvx2, &Kernels::MatchEntry,
                                      &Kernels::MatchBatchEntry};

}  // namespace

namespace internal {

const ClusterKernels* GetAvx2ClusterKernels() { return &kAvx2Kernels; }

}  // namespace internal

}  // namespace vfps

#else  // !defined(__AVX2__)

namespace vfps {
namespace internal {

const ClusterKernels* GetAvx2ClusterKernels() { return nullptr; }

}  // namespace internal
}  // namespace vfps

#endif  // defined(__AVX2__)
