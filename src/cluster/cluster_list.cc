// Copyright 2026 The vfps Authors.

#include "src/cluster/cluster_list.h"

#include "src/util/macros.h"

namespace vfps {

ClusterSlot ClusterList::Add(SubscriptionId id,
                             std::span<const PredicateId> slots) {
  uint32_t size = static_cast<uint32_t>(slots.size());
  if (size >= by_size_.size()) by_size_.resize(size + 1);
  if (by_size_[size] == nullptr) {
    by_size_[size] = std::make_unique<Cluster>(size);
  }
  size_t row = by_size_[size]->Add(id, slots);
  ++count_;
  return ClusterSlot{size, row};
}

SubscriptionId ClusterList::Remove(ClusterSlot slot) {
  VFPS_CHECK(slot.size < by_size_.size() && by_size_[slot.size] != nullptr);
  SubscriptionId moved = by_size_[slot.size]->RemoveAt(slot.row);
  --count_;
  if (by_size_[slot.size]->empty()) by_size_[slot.size].reset();
  return moved;
}

void ClusterList::Match(const uint8_t* results, bool use_prefetch,
                        std::vector<SubscriptionId>* out) const {
  for (const auto& cluster : by_size_) {
    if (cluster != nullptr) cluster->Match(results, use_prefetch, out);
  }
}

size_t ClusterList::CheckedRowsPerMatch() const {
  size_t rows = 0;
  for (const auto& cluster : by_size_) {
    if (cluster != nullptr && cluster->size() > 0) rows += cluster->count();
  }
  return rows;
}

size_t ClusterList::MemoryUsage() const {
  size_t total = by_size_.capacity() * sizeof(void*);
  for (const auto& cluster : by_size_) {
    if (cluster != nullptr) total += sizeof(Cluster) + cluster->MemoryUsage();
  }
  return total;
}

}  // namespace vfps
