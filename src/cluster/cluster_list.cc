// Copyright 2026 The vfps Authors.

#include "src/cluster/cluster_list.h"

#include <cstdio>

#include "src/util/macros.h"

/// Reports the first violated invariant (with context) and returns false
/// from the enclosing CheckInvariants. Local to invariant walks.
#define VFPS_INVARIANT(cond, ...)             \
  do {                                        \
    if (!(cond)) {                            \
      std::fprintf(stderr, __VA_ARGS__);      \
      std::fprintf(stderr, " [%s]\n", #cond); \
      return false;                           \
    }                                         \
  } while (0)

namespace vfps {

ClusterList::ClusterList(const ClusterList& other, uint32_t cow_size)
    : by_size_(other.by_size_),
      count_(other.count_),
      cluster_count_(other.cluster_count_) {
  if (cow_size < by_size_.size() && by_size_[cow_size] != nullptr) {
    by_size_[cow_size] = std::make_shared<Cluster>(*by_size_[cow_size]);
  }
}

ClusterSlot ClusterList::Add(SubscriptionId id,
                             std::span<const PredicateId> slots) {
  uint32_t size = static_cast<uint32_t>(slots.size());
  if (size >= by_size_.size()) by_size_.resize(size + 1);
  if (by_size_[size] == nullptr) {
    by_size_[size] = std::make_shared<Cluster>(size);
    ++cluster_count_;
  }
  size_t row = by_size_[size]->Add(id, slots);
  ++count_;
  VFPS_DCHECK_INVARIANT(CheckInvariants());
  return ClusterSlot{size, row};
}

SubscriptionId ClusterList::Remove(ClusterSlot slot) {
  VFPS_CHECK(slot.size < by_size_.size() && by_size_[slot.size] != nullptr);
  SubscriptionId moved = by_size_[slot.size]->RemoveAt(slot.row);
  --count_;
  if (by_size_[slot.size]->empty()) {
    by_size_[slot.size].reset();
    --cluster_count_;
  }
  VFPS_DCHECK_INVARIANT(CheckInvariants());
  return moved;
}

bool ClusterList::CheckInvariants() const {
  size_t total = 0;
  size_t allocated = 0;
  for (size_t s = 0; s < by_size_.size(); ++s) {
    const Cluster* cluster = by_size_[s].get();
    if (cluster == nullptr) continue;
    ++allocated;
    VFPS_INVARIANT(cluster->size() == s,
                   "ClusterList: slot %zu holds a cluster of size %u", s,
                   cluster->size());
    VFPS_INVARIANT(!cluster->empty(),
                   "ClusterList: empty cluster retained at size %zu "
                   "(Remove must release it)",
                   s);
    if (!cluster->CheckInvariants()) return false;
    total += cluster->count();
  }
  VFPS_INVARIANT(total == count_,
                 "ClusterList: clusters hold %zu subscriptions, count "
                 "is %zu",
                 total, count_);
  VFPS_INVARIANT(allocated == cluster_count_,
                 "ClusterList: %zu clusters allocated, cluster_count_ "
                 "is %zu",
                 allocated, cluster_count_);
  return true;
}

void ClusterList::Match(const uint8_t* results, bool use_prefetch,
                        std::vector<SubscriptionId>* out) const {
  for (const auto& cluster : by_size_) {
    if (cluster != nullptr) cluster->Match(results, use_prefetch, out);
  }
}

void ClusterList::MatchBatch(const BatchResultVector& block,
                             const uint64_t* alive, bool use_prefetch,
                             size_t lane_base, BatchResult* out) const {
  for (const auto& cluster : by_size_) {
    if (cluster != nullptr) {
      cluster->MatchBatch(block, alive, use_prefetch, lane_base, out);
    }
  }
}

size_t ClusterList::CheckedRowsPerMatch() const {
  size_t rows = 0;
  for (const auto& cluster : by_size_) {
    if (cluster != nullptr && cluster->size() > 0) rows += cluster->count();
  }
  return rows;
}

size_t ClusterList::MemoryUsage() const {
  size_t total = by_size_.capacity() * sizeof(void*);
  for (const auto& cluster : by_size_) {
    if (cluster != nullptr) total += sizeof(Cluster) + cluster->MemoryUsage();
  }
  return total;
}

}  // namespace vfps
