// Copyright 2026 The vfps Authors.

#include "src/cluster/cluster.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <unordered_set>

#include "src/util/prefetch.h"

/// Reports the first violated invariant (with context) and returns false
/// from the enclosing CheckInvariants. Local to invariant walks.
#define VFPS_INVARIANT(cond, ...)                 \
  do {                                            \
    if (!(cond)) {                                \
      std::fprintf(stderr, __VA_ARGS__);          \
      std::fprintf(stderr, " [%s]\n", #cond);     \
      return false;                               \
    }                                             \
  } while (0)

namespace vfps {

namespace {

/// Tests row `j`: true iff all N column cells are set. Short-circuits in
/// column order, so columns are laid out equality-first by the matchers.
template <int N>
inline bool RowMatches(const uint8_t* rv, const PredicateId* const* cols,
                       size_t j) {
  if constexpr (N == 0) {
    return true;
  } else {
    return rv[cols[0][j]] != 0 && RowMatches<N - 1>(rv, cols + 1, j);
  }
}

/// Issues prefetches for the stripe LOOKAHEAD entries ahead of `j`, for the
/// first min(N, kMaxPrefetchColumns) columns. Prefetching past the end of a
/// column is harmless (advisory instruction, never faults).
template <int N>
inline void PrefetchStripe(const PredicateId* const* cols, size_t j) {
  constexpr size_t kCols =
      static_cast<size_t>(N) < kMaxPrefetchColumns ? static_cast<size_t>(N)
                                                   : kMaxPrefetchColumns;
  for (size_t c = 0; c < kCols; ++c) {
    PrefetchRead(cols[c] + j + kClusterLookahead);
  }
}

/// The cluster matching kernel of Section 2.2, specialized per size N and
/// per prefetch mode: an outer loop over UNFOLD-wide stripes with prefetch
/// instructions at stripe boundaries, plus a remainder loop (footnote 2).
template <int N, bool kPrefetch>
void MatchKernel(const uint8_t* rv, const PredicateId* const* cols,
                 const SubscriptionId* ids, size_t count,
                 std::vector<SubscriptionId>* out) {
  size_t j = 0;
  const size_t full = count - count % kClusterUnfold;
  for (; j < full; j += kClusterUnfold) {
    for (size_t k = j; k < j + kClusterUnfold; ++k) {
      if (RowMatches<N>(rv, cols, k)) out->push_back(ids[k]);
    }
    if constexpr (kPrefetch) PrefetchStripe<N>(cols, j);
  }
  for (; j < count; ++j) {
    if (RowMatches<N>(rv, cols, j)) out->push_back(ids[j]);
  }
}

/// Generic kernel for subscriptions with more than kMaxSpecializedSize
/// predicates: the column loop is a runtime loop ("A generic method is more
/// time consuming because it needs an additional loop", Section 2.2).
template <bool kPrefetch>
void GenericMatchKernel(const uint8_t* rv, const PredicateId* const* cols,
                        size_t n, const SubscriptionId* ids, size_t count,
                        std::vector<SubscriptionId>* out) {
  const size_t prefetch_cols = std::min(n, kMaxPrefetchColumns);
  size_t j = 0;
  const size_t full = count - count % kClusterUnfold;
  for (; j < full; j += kClusterUnfold) {
    for (size_t k = j; k < j + kClusterUnfold; ++k) {
      bool ok = true;
      for (size_t c = 0; c < n && ok; ++c) ok = rv[cols[c][k]] != 0;
      if (ok) out->push_back(ids[k]);
    }
    if constexpr (kPrefetch) {
      for (size_t c = 0; c < prefetch_cols; ++c) {
        PrefetchRead(cols[c] + j + kClusterLookahead);
      }
    }
  }
  for (; j < count; ++j) {
    bool ok = true;
    for (size_t c = 0; c < n && ok; ++c) ok = rv[cols[c][j]] != 0;
    if (ok) out->push_back(ids[j]);
  }
}

/// Largest size with a fully unrolled specialized kernel. The paper's
/// implementation specializes "ten or fewer" predicates.
constexpr uint32_t kMaxSpecializedSize = 10;

/// Tests one row against all batch lanes at once: starts from the alive
/// mask and ANDs in each column's lane stripe, short-circuiting the column
/// loop as soon as no lane survives (the batch generalization of
/// RowMatches' equality-first short circuit). Surviving bits are the lanes
/// this row matches. W is the stripe width in 64-bit words.
template <size_t W>
inline void TestBatchRow(const BatchResultVector& block,
                         const uint64_t* alive,
                         const PredicateId* const* cols, size_t n,
                         SubscriptionId id, size_t j, size_t lane_base,
                         BatchResult* out) {
  uint64_t m[W];
  for (size_t w = 0; w < W; ++w) m[w] = alive[w];
  for (size_t c = 0; c < n; ++c) {
    const uint64_t* stripe = block.stripe(cols[c][j]);
    uint64_t any = 0;
    for (size_t w = 0; w < W; ++w) {
      m[w] &= stripe[w];
      any |= m[w];
    }
    if (any == 0) return;
  }
  for (size_t w = 0; w < W; ++w) {
    uint64_t bits = m[w];
    while (bits != 0) {
      const size_t lane = w * 64 + static_cast<size_t>(std::countr_zero(bits));
      out->Append(lane_base + lane, id);
      bits &= bits - 1;
    }
  }
}

/// The batched cluster kernel: one pass over the columns serves every lane
/// of the batch. Keeps the per-event kernel's UNFOLD stripes and prefetch
/// cadence (the column layout and lookahead are identical); the column
/// loop is a runtime loop since the stripe ANDing already amortizes the
/// loop overhead across up to 256 lanes.
template <size_t W, bool kPrefetch>
void BatchMatchKernel(const BatchResultVector& block, const uint64_t* alive,
                      const PredicateId* const* cols, size_t n,
                      const SubscriptionId* ids, size_t count,
                      size_t lane_base, BatchResult* out) {
  const size_t prefetch_cols = std::min(n, kMaxPrefetchColumns);
  size_t j = 0;
  const size_t full = count - count % kClusterUnfold;
  for (; j < full; j += kClusterUnfold) {
    for (size_t k = j; k < j + kClusterUnfold; ++k) {
      TestBatchRow<W>(block, alive, cols, n, ids[k], k, lane_base, out);
    }
    if constexpr (kPrefetch) {
      for (size_t c = 0; c < prefetch_cols; ++c) {
        PrefetchRead(cols[c] + j + kClusterLookahead);
      }
    }
  }
  for (; j < count; ++j) {
    TestBatchRow<W>(block, alive, cols, n, ids[j], j, lane_base, out);
  }
}

template <bool kPrefetch>
void BatchDispatch(const BatchResultVector& block, const uint64_t* alive,
                   const PredicateId* const* cols, size_t n,
                   const SubscriptionId* ids, size_t count, size_t lane_base,
                   BatchResult* out) {
  switch (block.words_per_lane()) {
    case 1:
      return BatchMatchKernel<1, kPrefetch>(block, alive, cols, n, ids,
                                            count, lane_base, out);
    case 2:
      return BatchMatchKernel<2, kPrefetch>(block, alive, cols, n, ids,
                                            count, lane_base, out);
    case 3:
      return BatchMatchKernel<3, kPrefetch>(block, alive, cols, n, ids,
                                            count, lane_base, out);
    case 4:
      return BatchMatchKernel<4, kPrefetch>(block, alive, cols, n, ids,
                                            count, lane_base, out);
    default:
      VFPS_CHECK(false);  // BatchResultVector::kMaxLanes caps width at 4
  }
}

template <bool kPrefetch>
void Dispatch(uint32_t n, const uint8_t* rv, const PredicateId* const* cols,
              const SubscriptionId* ids, size_t count,
              std::vector<SubscriptionId>* out) {
  switch (n) {
    case 1:
      return MatchKernel<1, kPrefetch>(rv, cols, ids, count, out);
    case 2:
      return MatchKernel<2, kPrefetch>(rv, cols, ids, count, out);
    case 3:
      return MatchKernel<3, kPrefetch>(rv, cols, ids, count, out);
    case 4:
      return MatchKernel<4, kPrefetch>(rv, cols, ids, count, out);
    case 5:
      return MatchKernel<5, kPrefetch>(rv, cols, ids, count, out);
    case 6:
      return MatchKernel<6, kPrefetch>(rv, cols, ids, count, out);
    case 7:
      return MatchKernel<7, kPrefetch>(rv, cols, ids, count, out);
    case 8:
      return MatchKernel<8, kPrefetch>(rv, cols, ids, count, out);
    case 9:
      return MatchKernel<9, kPrefetch>(rv, cols, ids, count, out);
    case 10:
      return MatchKernel<10, kPrefetch>(rv, cols, ids, count, out);
    default:
      return GenericMatchKernel<kPrefetch>(rv, cols, n, ids, count, out);
  }
}

}  // namespace

Cluster::Cluster(uint32_t size) : size_(size) {}

void Cluster::Grow(size_t min_capacity) {
  size_t new_capacity = capacity_ == 0 ? kClusterUnfold : capacity_ * 2;
  while (new_capacity < min_capacity) new_capacity *= 2;
  std::vector<PredicateId> new_columns(new_capacity * size_);
  for (uint32_t c = 0; c < size_; ++c) {
    std::copy(columns_.begin() + c * capacity_,
              columns_.begin() + c * capacity_ + count_,
              new_columns.begin() + c * new_capacity);
  }
  columns_ = std::move(new_columns);
  capacity_ = new_capacity;
  ids_.reserve(new_capacity);
}

size_t Cluster::Add(SubscriptionId id, std::span<const PredicateId> slots) {
  VFPS_CHECK(slots.size() == size_);
  if (count_ == capacity_) Grow(count_ + 1);
  for (uint32_t c = 0; c < size_; ++c) {
    columns_[c * capacity_ + count_] = slots[c];
  }
  ids_.push_back(id);
  size_t row = count_++;
  VFPS_DCHECK_INVARIANT(CheckInvariants());
  return row;
}

SubscriptionId Cluster::RemoveAt(size_t row) {
  VFPS_DCHECK(row < count_);
  size_t last = count_ - 1;
  if (row != last) {
    for (uint32_t c = 0; c < size_; ++c) {
      columns_[c * capacity_ + row] = columns_[c * capacity_ + last];
    }
    ids_[row] = ids_[last];
  }
  ids_.pop_back();
  --count_;
  VFPS_DCHECK_INVARIANT(CheckInvariants());
  return row != count_ ? ids_[row] : kInvalidSubscriptionId;
}

bool Cluster::CheckInvariants() const {
  VFPS_INVARIANT(count_ <= capacity_,
                 "Cluster(size=%u): count %zu exceeds capacity %zu", size_,
                 count_, capacity_);
  VFPS_INVARIANT(ids_.size() == count_,
                 "Cluster(size=%u): subscription line holds %zu ids, "
                 "count is %zu",
                 size_, ids_.size(), count_);
  VFPS_INVARIANT(columns_.size() == capacity_ * size_,
                 "Cluster(size=%u): columnar storage holds %zu cells, "
                 "expected capacity * size = %zu",
                 size_, columns_.size(), capacity_ * size_);
  std::unordered_set<SubscriptionId> seen;
  seen.reserve(count_);
  for (size_t j = 0; j < count_; ++j) {
    VFPS_INVARIANT(ids_[j] != kInvalidSubscriptionId,
                   "Cluster(size=%u): invalid id at row %zu", size_, j);
    VFPS_INVARIANT(seen.insert(ids_[j]).second,
                   "Cluster(size=%u): duplicate subscription %llu at "
                   "row %zu",
                   size_, static_cast<unsigned long long>(ids_[j]), j);
  }
  return true;
}

void Cluster::Match(const uint8_t* results, bool use_prefetch,
                    std::vector<SubscriptionId>* out) const {
  if (count_ == 0) return;
  if (size_ == 0) {
    // Size-0 fast path: the access predicate was the whole subscription.
    out->insert(out->end(), ids_.begin(), ids_.end());
    return;
  }
  // Build the per-column base pointer array the kernels index through.
  const PredicateId* col_ptrs[kMaxSpecializedSize];
  const PredicateId** cols;
  std::vector<const PredicateId*> big_cols;
  if (size_ <= kMaxSpecializedSize) {
    cols = col_ptrs;
  } else {
    big_cols.resize(size_);
    cols = big_cols.data();
  }
  for (uint32_t c = 0; c < size_; ++c) cols[c] = &columns_[c * capacity_];

  if (use_prefetch) {
    Dispatch<true>(size_, results, cols, ids_.data(), count_, out);
  } else {
    Dispatch<false>(size_, results, cols, ids_.data(), count_, out);
  }
}

void Cluster::MatchBatch(const BatchResultVector& block,
                         const uint64_t* alive, bool use_prefetch,
                         size_t lane_base, BatchResult* out) const {
  if (count_ == 0) return;
  if (size_ == 0) {
    // Size-0 fast path: every alive lane gets the whole subscription line.
    const size_t words = block.words_per_lane();
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = alive[w];
      while (bits != 0) {
        const size_t lane =
            w * 64 + static_cast<size_t>(std::countr_zero(bits));
        std::vector<SubscriptionId>* row =
            out->mutable_matches(lane_base + lane);
        row->insert(row->end(), ids_.begin(), ids_.end());
        bits &= bits - 1;
      }
    }
    return;
  }
  const PredicateId* col_ptrs[kMaxSpecializedSize];
  const PredicateId** cols;
  std::vector<const PredicateId*> big_cols;
  if (size_ <= kMaxSpecializedSize) {
    cols = col_ptrs;
  } else {
    big_cols.resize(size_);
    cols = big_cols.data();
  }
  for (uint32_t c = 0; c < size_; ++c) cols[c] = &columns_[c * capacity_];

  if (use_prefetch) {
    BatchDispatch<true>(block, alive, cols, size_, ids_.data(), count_,
                        lane_base, out);
  } else {
    BatchDispatch<false>(block, alive, cols, size_, ids_.data(), count_,
                         lane_base, out);
  }
}

}  // namespace vfps
