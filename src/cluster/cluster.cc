// Copyright 2026 The vfps Authors.

#include "src/cluster/cluster.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <unordered_set>

#include "src/cluster/kernels.h"

/// Reports the first violated invariant (with context) and returns false
/// from the enclosing CheckInvariants. Local to invariant walks.
#define VFPS_INVARIANT(cond, ...)                 \
  do {                                            \
    if (!(cond)) {                                \
      std::fprintf(stderr, __VA_ARGS__);          \
      std::fprintf(stderr, " [%s]\n", #cond);     \
      return false;                               \
    }                                             \
  } while (0)

namespace vfps {

Cluster::Cluster(uint32_t size) : size_(size) {}

void Cluster::Grow(size_t min_capacity) {
  size_t new_capacity = capacity_ == 0 ? kClusterUnfold : capacity_ * 2;
  while (new_capacity < min_capacity) new_capacity *= 2;
  std::vector<PredicateId> new_columns(new_capacity * size_);
  for (uint32_t c = 0; c < size_; ++c) {
    std::copy(columns_.begin() + c * capacity_,
              columns_.begin() + c * capacity_ + count_,
              new_columns.begin() + c * new_capacity);
  }
  columns_ = std::move(new_columns);
  capacity_ = new_capacity;
  ids_.reserve(new_capacity);
}

size_t Cluster::Add(SubscriptionId id, std::span<const PredicateId> slots) {
  VFPS_CHECK(slots.size() == size_);
  if (count_ == capacity_) Grow(count_ + 1);
  for (uint32_t c = 0; c < size_; ++c) {
    columns_[c * capacity_ + count_] = slots[c];
  }
  ids_.push_back(id);
  size_t row = count_++;
  VFPS_DCHECK_INVARIANT(CheckInvariants());
  return row;
}

SubscriptionId Cluster::RemoveAt(size_t row) {
  VFPS_DCHECK(row < count_);
  size_t last = count_ - 1;
  if (row != last) {
    for (uint32_t c = 0; c < size_; ++c) {
      columns_[c * capacity_ + row] = columns_[c * capacity_ + last];
    }
    ids_[row] = ids_[last];
  }
  ids_.pop_back();
  --count_;
  VFPS_DCHECK_INVARIANT(CheckInvariants());
  return row != count_ ? ids_[row] : kInvalidSubscriptionId;
}

bool Cluster::CheckInvariants() const {
  VFPS_INVARIANT(count_ <= capacity_,
                 "Cluster(size=%u): count %zu exceeds capacity %zu", size_,
                 count_, capacity_);
  VFPS_INVARIANT(ids_.size() == count_,
                 "Cluster(size=%u): subscription line holds %zu ids, "
                 "count is %zu",
                 size_, ids_.size(), count_);
  VFPS_INVARIANT(columns_.size() == capacity_ * size_,
                 "Cluster(size=%u): columnar storage holds %zu cells, "
                 "expected capacity * size = %zu",
                 size_, columns_.size(), capacity_ * size_);
  std::unordered_set<SubscriptionId> seen;
  seen.reserve(count_);
  for (size_t j = 0; j < count_; ++j) {
    VFPS_INVARIANT(ids_[j] != kInvalidSubscriptionId,
                   "Cluster(size=%u): invalid id at row %zu", size_, j);
    VFPS_INVARIANT(seen.insert(ids_[j]).second,
                   "Cluster(size=%u): duplicate subscription %llu at "
                   "row %zu",
                   size_, static_cast<unsigned long long>(ids_[j]), j);
  }
  return true;
}

void Cluster::Match(const uint8_t* results, bool use_prefetch,
                    std::vector<SubscriptionId>* out) const {
  if (count_ == 0) return;
  if (size_ == 0) {
    // Size-0 fast path: the access predicate was the whole subscription.
    out->insert(out->end(), ids_.begin(), ids_.end());
    return;
  }
  // Build the per-column base pointer array the kernels index through.
  const PredicateId* col_ptrs[kMaxSpecializedSize];
  const PredicateId** cols;
  std::vector<const PredicateId*> big_cols;
  if (size_ <= kMaxSpecializedSize) {
    cols = col_ptrs;
  } else {
    big_cols.resize(size_);
    cols = big_cols.data();
  }
  for (uint32_t c = 0; c < size_; ++c) cols[c] = &columns_[c * capacity_];

  ActiveClusterKernels().match(size_, results, cols, ids_.data(), count_,
                               use_prefetch, out);
}

void Cluster::MatchBatch(const BatchResultVector& block,
                         const uint64_t* alive, bool use_prefetch,
                         size_t lane_base, BatchResult* out) const {
  if (count_ == 0) return;
  if (size_ == 0) {
    // Size-0 fast path: every alive lane gets the whole subscription line.
    const size_t words = block.words_per_lane();
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = alive[w];
      while (bits != 0) {
        const size_t lane =
            w * 64 + static_cast<size_t>(std::countr_zero(bits));
        std::vector<SubscriptionId>* row =
            out->mutable_matches(lane_base + lane);
        row->insert(row->end(), ids_.begin(), ids_.end());
        bits &= bits - 1;
      }
    }
    return;
  }
  const PredicateId* col_ptrs[kMaxSpecializedSize];
  const PredicateId** cols;
  std::vector<const PredicateId*> big_cols;
  if (size_ <= kMaxSpecializedSize) {
    cols = col_ptrs;
  } else {
    big_cols.resize(size_);
    cols = big_cols.data();
  }
  for (uint32_t c = 0; c < size_; ++c) cols[c] = &columns_[c * capacity_];

  ActiveClusterKernels().match_batch(block, alive, cols, size_, ids_.data(),
                                     count_, lane_base, use_prefetch, out);
}

}  // namespace vfps
