// Copyright 2026 The vfps Authors.
// A cluster list: all subscriptions sharing one access predicate, grouped
// into per-size clusters (Figure 1 shows one such list hanging off an
// access predicate). "Inside the cluster list, subscriptions are grouped in
// subscription clusters according to their size."

#ifndef VFPS_CLUSTER_CLUSTER_LIST_H_
#define VFPS_CLUSTER_CLUSTER_LIST_H_

#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/types.h"

namespace vfps {

/// Location of one subscription inside a ClusterList, kept by matchers to
/// support O(1) deletion (§2.3: "Deletions can be made fast by maintaining
/// for each subscription the identifier of the cluster that contains it").
struct ClusterSlot {
  uint32_t size = 0;  // which cluster within the list
  size_t row = 0;     // row within that cluster
};

/// Per-size clusters under a single access predicate.
class ClusterList {
 public:
  ClusterList() = default;

  /// Copy-on-write copy at cluster granularity: shares every cluster with
  /// `other` except the one for `cow_size`, which is deep-copied so the
  /// copy can mutate it while readers keep scanning `other`'s version
  /// (epoch-based churn path; see docs/CONCURRENCY.md). Pass a size with
  /// no allocated cluster to share everything.
  ClusterList(const ClusterList& other, uint32_t cow_size);

  /// Adds a subscription with the given residual predicate slots (already
  /// equality-first ordered). Returns its location.
  ClusterSlot Add(SubscriptionId id, std::span<const PredicateId> slots);

  /// Removes the subscription at `slot`. Returns the id whose location
  /// changed to `slot` as a side effect (swap-with-last inside the
  /// cluster), or kInvalidSubscriptionId if none did.
  SubscriptionId Remove(ClusterSlot slot);

  /// Matches every cluster of the list against the result vector.
  void Match(const uint8_t* results, bool use_prefetch,
             std::vector<SubscriptionId>* out) const;

  /// Batch analogue of Match: scans every cluster once for all batch lanes
  /// set in `alive` (see Cluster::MatchBatch).
  void MatchBatch(const BatchResultVector& block, const uint64_t* alive,
                  bool use_prefetch, size_t lane_base,
                  BatchResult* out) const;

  /// Total subscriptions across all sizes (|c| summed).
  size_t subscription_count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Allocated per-size clusters (the clusters a Match call scans).
  /// Maintained incrementally so the match loop's telemetry does not walk
  /// by_size_.
  size_t cluster_count() const { return cluster_count_; }

  /// Rows that a Match call will test (the paper's "number of subscription
  /// checks" — size-0 rows are matches, not checks).
  size_t CheckedRowsPerMatch() const;

  /// The cluster for `size`, or nullptr if no subscription of that size is
  /// present. Used by the dynamic matcher's redistribution.
  const Cluster* cluster_for(uint32_t size) const {
    return size < by_size_.size() ? by_size_[size].get() : nullptr;
  }

  /// Largest size with a cluster allocated (for iteration).
  size_t max_size() const { return by_size_.size(); }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const;

  /// Validates the per-size grouping invariants: every allocated cluster
  /// is non-empty (empty ones are released on Remove), stores
  /// subscriptions of exactly its slot's size, and the per-cluster counts
  /// sum to subscription_count(). Recurses into Cluster::CheckInvariants.
  /// Prints the first violation and returns false.
  bool CheckInvariants() const;

 private:
  // shared_ptr, not unique_ptr: the churn path's COW copies share all
  // untouched clusters between the published snapshot and its successor.
  std::vector<std::shared_ptr<Cluster>> by_size_;
  size_t count_ = 0;
  size_t cluster_count_ = 0;
};

}  // namespace vfps

#endif  // VFPS_CLUSTER_CLUSTER_LIST_H_
