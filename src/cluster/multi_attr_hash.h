// Copyright 2026 The vfps Authors.
// Multi-attribute hashing structure (Section 3.1): a hash table whose
// schema is a set of attributes and whose keys are value tuples over that
// schema. Each occupied entry stands for one access predicate — the
// conjunction (A1 = v1) AND ... AND (Ak = vk) — and holds the cluster list
// of subscriptions using that conjunction as access predicate. Matching an
// event costs one key extraction plus one hash lookup per table whose
// schema is included in the event schema.

#ifndef VFPS_CLUSTER_MULTI_ATTR_HASH_H_
#define VFPS_CLUSTER_MULTI_ATTR_HASH_H_

#include <unordered_map>
#include <vector>

#include "src/cluster/cluster_list.h"
#include "src/core/attribute_set.h"
#include "src/core/event.h"
#include "src/core/subscription.h"
#include "src/core/types.h"

namespace vfps {

/// One multi-attribute hashing structure <A, h>.
class MultiAttrHashTable {
 public:
  explicit MultiAttrHashTable(AttributeSet schema)
      : schema_(std::move(schema)) {}

  /// The schema A of the structure.
  const AttributeSet& schema() const { return schema_; }

  /// Fills `key` with the event's values over the schema attributes, in
  /// schema order. Returns false if the event lacks one of them (then no
  /// access predicate of this table can be satisfied).
  bool ExtractKey(const Event& event, std::vector<Value>* key) const;

  /// Fills `key` with the subscription's equality values over the schema
  /// attributes. Requires schema() ⊆ s.equality_attributes().
  void ExtractKey(const Subscription& s, std::vector<Value>* key) const;

  /// The cluster list for `key`, or nullptr if no subscription uses this
  /// value tuple as access predicate.
  ClusterList* Probe(const std::vector<Value>& key);
  const ClusterList* Probe(const std::vector<Value>& key) const;

  /// Adds a subscription under `key`; creates the entry if needed.
  ClusterSlot Add(const std::vector<Value>& key, SubscriptionId id,
                  std::span<const PredicateId> slots);

  /// Removes the subscription at `slot` under `key`; drops the entry when
  /// it empties. Returns the id relocated into `slot` (see
  /// ClusterList::Remove), or kInvalidSubscriptionId.
  SubscriptionId Remove(const std::vector<Value>& key, ClusterSlot slot);

  /// Visits every (key, cluster list) entry. fn(const std::vector<Value>&,
  /// ClusterList&). Entries must not be added or removed during the visit.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) {
    for (auto& [key, list] : entries_) fn(key, list);
  }
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [key, list] : entries_) fn(key, list);
  }

  /// Number of occupied entries (distinct access predicates).
  size_t entry_count() const { return entries_.size(); }

  /// |H|: subscriptions stored across all entries (drives the hash table
  /// benefit metric of Section 4).
  size_t subscription_count() const { return subscription_count_; }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const;

  /// Validates the hashing-structure invariants (§3.1): every key is a
  /// value tuple over exactly the schema attributes, every entry is
  /// non-empty (access-predicate necessity — an entry exists only while
  /// some subscription uses that conjunction as its access predicate),
  /// and the per-entry counts sum to subscription_count(). Recurses into
  /// ClusterList::CheckInvariants. Prints the first violation and returns
  /// false.
  bool CheckInvariants() const;

 private:
  struct KeyHash {
    size_t operator()(const std::vector<Value>& key) const;
  };

  AttributeSet schema_;
  std::unordered_map<std::vector<Value>, ClusterList, KeyHash> entries_;
  size_t subscription_count_ = 0;
};

}  // namespace vfps

#endif  // VFPS_CLUSTER_MULTI_ATTR_HASH_H_
