// Copyright 2026 The vfps Authors.

#include "src/cluster/kernels.h"

namespace vfps {

const ClusterKernels& KernelsForIsa(SimdIsa isa) {
  const ClusterKernels* table = nullptr;
  switch (isa) {
    case SimdIsa::kScalar:
      table = internal::GetScalarClusterKernels();
      break;
    case SimdIsa::kSse2:
      table = internal::GetSse2ClusterKernels();
      break;
    case SimdIsa::kAvx2:
      table = internal::GetAvx2ClusterKernels();
      break;
    case SimdIsa::kNeon:
      table = internal::GetNeonClusterKernels();
      break;
  }
  return table != nullptr ? *table : *internal::GetScalarClusterKernels();
}

const ClusterKernels& ActiveClusterKernels() {
  return KernelsForIsa(ActiveSimdIsa());
}

}  // namespace vfps
