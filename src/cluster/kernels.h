// Copyright 2026 The vfps Authors.
// Runtime-dispatched cluster scan kernels. Each SIMD ISA (src/util/simd.h)
// contributes one translation unit exporting a ClusterKernels table of
// function pointers; Cluster::Match / Cluster::MatchBatch resolve the table
// for the active ISA per call. The scalar table (kernels_scalar.cc) is the
// paper-faithful reference implementation (Section 2.2) every vector
// variant is differentially verified against (tools/vfps_verify --simd,
// tests/simd_kernel_test.cc). See docs/KERNELS.md.

#ifndef VFPS_CLUSTER_KERNELS_H_
#define VFPS_CLUSTER_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/batch_result.h"
#include "src/core/batch_result_vector.h"
#include "src/core/types.h"
#include "src/util/simd.h"

namespace vfps {

/// Largest size with a fully unrolled specialized per-event kernel. The
/// paper's implementation specializes "ten or fewer" predicates; bigger
/// clusters take the generic runtime-column-loop kernel.
inline constexpr uint32_t kMaxSpecializedSize = 10;

/// One ISA's pair of phase-2 scan entry points. `cols` holds `n` per-column
/// base pointers into the cluster's columnar storage; rows [0, count) of
/// every column are valid. Kernels must emit matches in ascending row order
/// (the scalar reference does, and the differential harness compares
/// ordered output).
///
/// The per-event kernel's `rv` buffer must stay readable for
/// kSimdGatherSlack bytes past the last addressable cell (ResultVector pads
/// automatically; raw-buffer callers over-allocate).
struct ClusterKernels {
  SimdIsa isa;

  /// Per-event scan: appends ids[j] for every row j whose n cells are all
  /// nonzero in rv.
  void (*match)(uint32_t n, const uint8_t* rv, const PredicateId* const* cols,
                const SubscriptionId* ids, size_t count, bool use_prefetch,
                std::vector<SubscriptionId>* out);

  /// Batched scan: tests every row against all batch lanes at once. A row
  /// matches lane e iff bit e survives ANDing `alive` with the row's column
  /// stripes from `block`; matches land in out lane `lane_base + e`.
  void (*match_batch)(const BatchResultVector& block, const uint64_t* alive,
                      const PredicateId* const* cols, size_t n,
                      const SubscriptionId* ids, size_t count,
                      size_t lane_base, bool use_prefetch, BatchResult* out);
};

/// The kernel table for `isa`, falling back to scalar when this build did
/// not compile that ISA's translation unit (e.g. the AVX2 TU on non-x86).
const ClusterKernels& KernelsForIsa(SimdIsa isa);

/// The table matching ActiveSimdIsa(). Resolved per Cluster::Match call —
/// one relaxed atomic load and a switch, negligible next to a cluster scan.
const ClusterKernels& ActiveClusterKernels();

namespace internal {

/// Per-TU table accessors. A TU whose ISA the build cannot express returns
/// nullptr and KernelsForIsa falls back to scalar. GetScalarClusterKernels
/// never returns nullptr.
const ClusterKernels* GetScalarClusterKernels();
const ClusterKernels* GetSse2ClusterKernels();
const ClusterKernels* GetAvx2ClusterKernels();
const ClusterKernels* GetNeonClusterKernels();

}  // namespace internal

}  // namespace vfps

#endif  // VFPS_CLUSTER_KERNELS_H_
