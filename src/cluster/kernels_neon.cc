// Copyright 2026 The vfps Authors.
// NEON cluster kernels (AArch64 baseline). The per-event row groups gather
// 8 cells into a uint8x8_t, mark nonzero bytes with vtst, and extract the
// survivor mask with a weighted horizontal add (the AArch64 movemask
// idiom); the batch stripe AND runs on 128-bit q-registers with a vmaxv
// any-test. Compiles to a nullptr stub on non-AArch64 builds.

#include "src/cluster/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "src/cluster/kernels_vector.h"

namespace vfps {
namespace {

struct NeonOps {
  static inline uint32_t MatchRows8(const uint8_t* rv,
                                    const PredicateId* const* cols, size_t n,
                                    size_t j) {
    const uint8x8_t lane_bits = {1, 2, 4, 8, 16, 32, 64, 128};
    uint32_t mask = 0xFF;
    for (size_t c = 0; c < n; ++c) {
      const PredicateId* idx = cols[c] + j;
      uint8_t cells[8];
      for (int i = 0; i < 8; ++i) cells[i] = rv[idx[i]];
      const uint8x8_t v = vld1_u8(cells);
      // vtst: 0xFF where the cell is nonzero; weight each lane by its bit
      // and horizontally add to get the survivor byte.
      mask &= vaddv_u8(vand_u8(vtst_u8(v, v), lane_bits));
      if (mask == 0) return 0;
    }
    return mask;
  }

  template <size_t W>
  static inline bool RowSurvives(const BatchResultVector& block,
                                 const uint64_t* alive,
                                 const PredicateId* const* cols, size_t n,
                                 size_t j, uint64_t* m) {
    static_assert(W >= 1 && W <= 4);
    if constexpr (W == 1) {
      uint64_t v = alive[0];
      for (size_t c = 0; c < n; ++c) {
        v &= block.stripe(cols[c][j])[0];
        if (v == 0) return false;
      }
      m[0] = v;
      return true;
    } else {
      // The lane mask stays in q-registers across the column loop: one
      // 128-bit AND per word pair, the odd tail word scalar. Never loads
      // past W words — stripes are packed back to back in the block.
      uint64x2_t lo = vld1q_u64(alive);
      uint64x2_t hi = vdupq_n_u64(0);
      uint64_t tail = 0;
      if constexpr (W == 4) {
        hi = vld1q_u64(alive + 2);
      } else if constexpr (W == 3) {
        tail = alive[2];
      }
      for (size_t c = 0; c < n; ++c) {
        const uint64_t* stripe = block.stripe(cols[c][j]);
        lo = vandq_u64(lo, vld1q_u64(stripe));
        if constexpr (W == 4) {
          hi = vandq_u64(hi, vld1q_u64(stripe + 2));
          if (vmaxvq_u32(vreinterpretq_u32_u64(vorrq_u64(lo, hi))) == 0) {
            return false;
          }
        } else if constexpr (W == 3) {
          tail &= stripe[2];
          if (tail == 0 &&
              vmaxvq_u32(vreinterpretq_u32_u64(lo)) == 0) {
            return false;
          }
        } else {
          if (vmaxvq_u32(vreinterpretq_u32_u64(lo)) == 0) return false;
        }
      }
      vst1q_u64(m, lo);
      if constexpr (W == 4) {
        vst1q_u64(m + 2, hi);
      } else if constexpr (W == 3) {
        m[2] = tail;
      }
      return true;
    }
  }
};

using Kernels = vector_kernels::VectorKernels<NeonOps>;

constexpr ClusterKernels kNeonKernels{SimdIsa::kNeon, &Kernels::MatchEntry,
                                      &Kernels::MatchBatchEntry};

}  // namespace

namespace internal {

const ClusterKernels* GetNeonClusterKernels() { return &kNeonKernels; }

}  // namespace internal

}  // namespace vfps

#else  // !defined(__aarch64__)

namespace vfps {
namespace internal {

const ClusterKernels* GetNeonClusterKernels() { return nullptr; }

}  // namespace internal
}  // namespace vfps

#endif  // defined(__aarch64__)
