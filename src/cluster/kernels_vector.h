// Copyright 2026 The vfps Authors.
// Shared skeleton for the vector cluster kernels. Each per-ISA translation
// unit (kernels_sse2/avx2/neon.cc) instantiates VectorKernels<Ops> with its
// own Ops policy *inside that TU*, so the instantiation is compiled with
// the TU's arch flags. The skeleton keeps the scalar kernels' structure —
// UNFOLD-wide stripes, prefetch at stripe boundaries, ascending-row output
// order — and delegates only the data-parallel inner steps to Ops:
//
//   // Survivor mask for rows [j, j+8): bit i set iff all n cells of row
//   // j+i are nonzero in rv. May read up to kSimdGatherSlack bytes past
//   // the last rv cell addressed (the gather over-read contract).
//   static uint32_t MatchRows8(const uint8_t* rv,
//                              const PredicateId* const* cols, size_t n,
//                              size_t j);
//
//   // ANDs row j's n column stripes into the alive mask, keeping the
//   // running mask in vector registers across the column loop (spilling
//   // it per column costs more than the wide ANDs save). Returns false on
//   // early death (m is then unspecified); on true, m holds the W
//   // surviving lane words.
//   template <size_t W>
//   static bool RowSurvives(const BatchResultVector& block,
//                           const uint64_t* alive,
//                           const PredicateId* const* cols, size_t n,
//                           size_t j, uint64_t* m);

#ifndef VFPS_CLUSTER_KERNELS_VECTOR_H_
#define VFPS_CLUSTER_KERNELS_VECTOR_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/kernels.h"
#include "src/util/prefetch.h"

namespace vfps {
namespace vector_kernels {

template <typename Ops>
struct VectorKernels {
  static_assert(kClusterUnfold % 8 == 0,
                "stripe width must be a whole number of 8-row groups");

  /// Per-event scan: 8-row vector groups inside UNFOLD stripes, scalar
  /// remainder for the last count % 8 rows.
  template <bool kPrefetch>
  static void Match(uint32_t n, const uint8_t* rv,
                    const PredicateId* const* cols, const SubscriptionId* ids,
                    size_t count, std::vector<SubscriptionId>* out) {
    const size_t prefetch_cols =
        std::min(static_cast<size_t>(n), kMaxPrefetchColumns);
    size_t j = 0;
    const size_t full = count - count % kClusterUnfold;
    for (; j < full; j += kClusterUnfold) {
      for (size_t g = j; g < j + kClusterUnfold; g += 8) {
        EmitGroup(rv, cols, n, g, ids, out);
      }
      if constexpr (kPrefetch) {
        for (size_t c = 0; c < prefetch_cols; ++c) {
          PrefetchRead(cols[c] + j + kClusterLookahead);
        }
      }
    }
    for (; j + 8 <= count; j += 8) {
      EmitGroup(rv, cols, n, j, ids, out);
    }
    for (; j < count; ++j) {
      bool ok = true;
      for (size_t c = 0; c < n && ok; ++c) ok = rv[cols[c][j]] != 0;
      if (ok) out->push_back(ids[j]);
    }
  }

  /// Batched scan: identical loop structure to the scalar BatchMatchKernel,
  /// with the per-column stripe AND + any-test routed through Ops.
  template <size_t W, bool kPrefetch>
  static void MatchBatchW(const BatchResultVector& block,
                          const uint64_t* alive,
                          const PredicateId* const* cols, size_t n,
                          const SubscriptionId* ids, size_t count,
                          size_t lane_base, BatchResult* out) {
    const size_t prefetch_cols = std::min(n, kMaxPrefetchColumns);
    size_t j = 0;
    const size_t full = count - count % kClusterUnfold;
    for (; j < full; j += kClusterUnfold) {
      for (size_t k = j; k < j + kClusterUnfold; ++k) {
        TestBatchRow<W>(block, alive, cols, n, ids[k], k, lane_base, out);
      }
      if constexpr (kPrefetch) {
        for (size_t c = 0; c < prefetch_cols; ++c) {
          PrefetchRead(cols[c] + j + kClusterLookahead);
        }
      }
    }
    for (; j < count; ++j) {
      TestBatchRow<W>(block, alive, cols, n, ids[j], j, lane_base, out);
    }
  }

  /// ClusterKernels::match entry point.
  static void MatchEntry(uint32_t n, const uint8_t* rv,
                         const PredicateId* const* cols,
                         const SubscriptionId* ids, size_t count,
                         bool use_prefetch, std::vector<SubscriptionId>* out) {
    if (use_prefetch) {
      Match<true>(n, rv, cols, ids, count, out);
    } else {
      Match<false>(n, rv, cols, ids, count, out);
    }
  }

  /// ClusterKernels::match_batch entry point.
  static void MatchBatchEntry(const BatchResultVector& block,
                              const uint64_t* alive,
                              const PredicateId* const* cols, size_t n,
                              const SubscriptionId* ids, size_t count,
                              size_t lane_base, bool use_prefetch,
                              BatchResult* out) {
    if (use_prefetch) {
      BatchDispatch<true>(block, alive, cols, n, ids, count, lane_base, out);
    } else {
      BatchDispatch<false>(block, alive, cols, n, ids, count, lane_base, out);
    }
  }

 private:
  static void EmitGroup(const uint8_t* rv, const PredicateId* const* cols,
                        size_t n, size_t j, const SubscriptionId* ids,
                        std::vector<SubscriptionId>* out) {
    uint32_t mask = Ops::MatchRows8(rv, cols, n, j);
    while (mask != 0) {
      const size_t k = j + static_cast<size_t>(std::countr_zero(mask));
      out->push_back(ids[k]);
      mask &= mask - 1;
    }
  }

  template <size_t W>
  static inline void TestBatchRow(const BatchResultVector& block,
                                  const uint64_t* alive,
                                  const PredicateId* const* cols, size_t n,
                                  SubscriptionId id, size_t j,
                                  size_t lane_base, BatchResult* out) {
    uint64_t m[W];
    if (!Ops::template RowSurvives<W>(block, alive, cols, n, j, m)) return;
    for (size_t w = 0; w < W; ++w) {
      uint64_t bits = m[w];
      while (bits != 0) {
        const size_t lane =
            w * 64 + static_cast<size_t>(std::countr_zero(bits));
        out->Append(lane_base + lane, id);
        bits &= bits - 1;
      }
    }
  }

  template <bool kPrefetch>
  static void BatchDispatch(const BatchResultVector& block,
                            const uint64_t* alive,
                            const PredicateId* const* cols, size_t n,
                            const SubscriptionId* ids, size_t count,
                            size_t lane_base, BatchResult* out) {
    switch (block.words_per_lane()) {
      case 1:
        return MatchBatchW<1, kPrefetch>(block, alive, cols, n, ids, count,
                                         lane_base, out);
      case 2:
        return MatchBatchW<2, kPrefetch>(block, alive, cols, n, ids, count,
                                         lane_base, out);
      case 3:
        return MatchBatchW<3, kPrefetch>(block, alive, cols, n, ids, count,
                                         lane_base, out);
      case 4:
        return MatchBatchW<4, kPrefetch>(block, alive, cols, n, ids, count,
                                         lane_base, out);
      default:
        VFPS_CHECK(false);  // BatchResultVector::kMaxLanes caps width at 4
    }
  }
};

}  // namespace vector_kernels
}  // namespace vfps

#endif  // VFPS_CLUSTER_KERNELS_VECTOR_H_
