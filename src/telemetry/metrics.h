// Copyright 2026 The vfps Authors.
// Telemetry subsystem: lock-free-on-the-hot-path counters, log-bucketed
// latency histograms (mergeable across shards), a registry that names and
// exports them, and a scoped timer built on src/util/timer.h.
//
// Design rules:
//   * Recording (Counter::Inc, Histogram::Record) is wait-free — relaxed
//     atomic adds, no locks, no allocation — so instruments can sit on the
//     match path and be hammered from every shard thread at once.
//   * Instrument lookup (MetricsRegistry::GetCounter / GetHistogram) takes
//     a mutex and may allocate; callers resolve instruments once at attach
//     time and cache the pointer. Returned pointers are stable for the
//     registry's lifetime.
//   * Exporting walks the same atomics; a snapshot taken while writers are
//     active is a consistent-enough point-in-time view (each instrument is
//     internally monotone, but cross-instrument skew is possible).
//
// The VFPS_TELEMETRY compile-time gate (CMake option, ON by default) does
// NOT remove this library — exporters, the METRICS verb, and server/broker
// accounting always work. It only compiles out the per-event recording in
// the matcher hot loops (see RecordEventTelemetry call sites), so the
// VFPS_TELEMETRY=OFF build leaves the Figure 2 kernels untouched.

#ifndef VFPS_TELEMETRY_METRICS_H_
#define VFPS_TELEMETRY_METRICS_H_

#ifndef VFPS_TELEMETRY
#define VFPS_TELEMETRY 1
#endif

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/util/sync.h"
#include "src/util/timer.h"

namespace vfps {

/// A monotonically increasing counter. Increments are relaxed atomic adds;
/// reads are racy-but-atomic snapshots.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    // sync-relaxed-ok: independent monotone counter on the match hot path;
    // no other data is published through it.
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    // sync-relaxed-ok: racy-but-atomic snapshot is the documented contract.
    return value_.load(std::memory_order_relaxed);
  }

  /// Zeroes the counter. Not atomic with respect to concurrent Inc calls;
  /// use only from the owner (e.g. before a shard merge re-accumulates).
  void Reset() {
    // sync-relaxed-ok: owner-only by contract; nothing to order against.
    value_.store(0, std::memory_order_relaxed);
  }

  /// Adds another counter's value (shard merging).
  void MergeFrom(const Counter& other) { Inc(other.value()); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A log-bucketed histogram of non-negative 64-bit samples (latencies in
/// nanoseconds, sizes, ...). Buckets are log-linear: 8 sub-buckets per
/// power of two, so any reported quantile overestimates the true sample by
/// at most one bucket width — a relative error bound of 1/8 = 12.5%
/// (values below 16 are bucketed exactly). Recording touches a handful of
/// relaxed atomics; histograms from different shards merge bucket-wise.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 8 per octave
  static constexpr int kBucketCount = (65 - kSubBucketBits) * kSubBuckets;

  /// Records one sample. Negative values clamp to 0.
  void Record(int64_t value) {
    const uint64_t v = value < 0 ? 0 : static_cast<uint64_t>(value);
    // Wait-free hot-path recording; exporters accept cross-cell skew.
    // sync-relaxed-ok: independent monotone accumulator cell.
    buckets_[IndexFor(v)].fetch_add(1, std::memory_order_relaxed);
    // sync-relaxed-ok: see above — independent monotone accumulator.
    count_.fetch_add(1, std::memory_order_relaxed);
    // sync-relaxed-ok: see above — independent monotone accumulator.
    sum_.fetch_add(v, std::memory_order_relaxed);
    // sync-relaxed-ok: monotone max via CAS; only the value itself matters.
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           // sync-relaxed-ok: monotone max CAS, no dependent data.
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const {
    // sync-relaxed-ok: racy-but-atomic snapshot is the documented contract.
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t sum() const {
    // sync-relaxed-ok: racy-but-atomic snapshot is the documented contract.
    return sum_.load(std::memory_order_relaxed);
  }
  uint64_t max() const {
    // sync-relaxed-ok: racy-but-atomic snapshot is the documented contract.
    return max_.load(std::memory_order_relaxed);
  }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Value at percentile `p` in [0, 100]: the inclusive upper bound of the
  /// bucket containing the p-th sample, i.e. an estimate within +12.5% of
  /// the true order statistic (exact for samples < 16). 0 when empty.
  uint64_t ValueAtPercentile(double p) const;

  /// Adds every sample of `other` into this histogram (bucket-wise).
  void MergeFrom(const Histogram& other);

  /// Zeroes all state. Not atomic w.r.t. concurrent Record; owner-only.
  void Reset();

  /// Maps a sample to its bucket index (exposed for tests).
  static int IndexFor(uint64_t v);
  /// Inclusive upper bound of the values mapping to `index` (for tests and
  /// the exporters' bucket boundaries).
  static uint64_t BucketUpperBound(int index);

 private:
  std::atomic<uint64_t> buckets_[kBucketCount]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Runs a Histogram-backed stopwatch for a scope: records the elapsed
/// nanoseconds on destruction. A null histogram makes it a no-op, so call
/// sites need no branching.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(timer_.ElapsedNanos());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  Timer timer_;
};

/// Point-in-time summary of one histogram (what the exporters print).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  double mean = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

/// Owns named instruments and renders exports. Instrument names follow the
/// Prometheus convention documented in docs/OBSERVABILITY.md:
/// vfps_<component>_<what>[_total|_ns]. Gauges are callbacks sampled at
/// export time (live structural values such as connection counts); they are
/// excluded from MergeFrom and must outlive the registry's last export.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the counter `name`. The pointer stays valid for the
  /// registry's lifetime; cache it and increment lock-free.
  Counter* GetCounter(std::string_view name);

  /// Finds or creates the histogram `name`; same pointer stability.
  Histogram* GetHistogram(std::string_view name);

  /// Registers (or replaces) a gauge: a callback sampled at export time.
  void RegisterGauge(std::string_view name, std::function<int64_t()> fn);

  /// Samples one gauge now; 0 if no such gauge is registered.
  int64_t GaugeValue(std::string_view name) const;

  /// Adds every counter and histogram of `other` into same-named
  /// instruments here, creating them as needed. Gauges are not merged.
  void MergeFrom(const MetricsRegistry& other);

  /// Snapshot of one histogram by name; zeroes if absent.
  HistogramSnapshot Snapshot(std::string_view name) const;

  /// Prometheus text exposition: "# TYPE" headers, counters and sampled
  /// gauges as plain series, histograms as <name>{quantile="..."} summary
  /// series plus _count/_sum. Lines are '\n'-terminated.
  std::string ExportPrometheus() const;

  /// Single-line JSON snapshot (no embedded newlines — safe for the wire
  /// protocol): {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ExportJson() const;

 private:
  /// Reader/writer lock (LockRank::kTelemetry, the leaf of the hierarchy):
  /// instrument creation and gauge registration take it exclusively,
  /// lookups and the export snapshots take it shared. Gauge callbacks and
  /// all instrument arithmetic run with it released.
  mutable SharedMutex mu_{LockRank::kTelemetry, "metrics_registry"};
  // std::map keeps export order deterministic; unique_ptr keeps instrument
  // addresses stable across rehash-free inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      VFPS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      VFPS_GUARDED_BY(mu_);
  std::map<std::string, std::function<int64_t()>, std::less<>> gauges_
      VFPS_GUARDED_BY(mu_);
};

}  // namespace vfps

#endif  // VFPS_TELEMETRY_METRICS_H_
