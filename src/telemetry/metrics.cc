// Copyright 2026 The vfps Authors.

#include "src/telemetry/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>
#include <vector>

namespace vfps {

namespace {

/// Appends printf-formatted text to `out` (exports are built this way to
/// avoid ostream locale surprises).
void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n) < sizeof(buf)
                                  ? static_cast<size_t>(n)
                                  : sizeof(buf) - 1);
}

}  // namespace

int Histogram::IndexFor(uint64_t v) {
  // Values below two octaves of sub-buckets are stored exactly.
  if (v < static_cast<uint64_t>(2 * kSubBuckets)) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBucketBits;
  const int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
  return (msb - kSubBucketBits + 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index < 2 * kSubBuckets) return static_cast<uint64_t>(index);
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  const uint64_t width = uint64_t{1} << (octave - 1);
  const uint64_t lower = static_cast<uint64_t>(kSubBuckets + sub)
                         << (octave - 1);
  return lower + width - 1;
}

uint64_t Histogram::ValueAtPercentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (p <= 0) p = 0;
  if (p >= 100) return max();
  uint64_t target =
      static_cast<uint64_t>(p / 100.0 * static_cast<double>(n) + 0.5);
  if (target == 0) target = 1;
  if (target > n) target = n;
  uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    // sync-relaxed-ok: point-in-time bucket snapshot; exporters accept
    // cross-cell skew by design (metrics.h design rules).
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      const uint64_t upper = BucketUpperBound(i);
      const uint64_t observed_max = max();
      return upper < observed_max ? upper : observed_max;
    }
  }
  return max();
}

void Histogram::MergeFrom(const Histogram& other) {
  uint64_t n = 0;
  uint64_t s = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    // sync-relaxed-ok: bucket-wise merge of monotone accumulators; the
    // merged view tolerates skew like any export snapshot.
    const uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    // sync-relaxed-ok: independent monotone accumulator.
    buckets_[i].fetch_add(c, std::memory_order_relaxed);
    n += c;
  }
  s = other.sum();
  // sync-relaxed-ok: independent monotone accumulator.
  count_.fetch_add(n, std::memory_order_relaxed);
  // sync-relaxed-ok: independent monotone accumulator.
  sum_.fetch_add(s, std::memory_order_relaxed);
  const uint64_t other_max = other.max();
  // sync-relaxed-ok: monotone max CAS, no dependent data.
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (other_max > cur && !max_.compare_exchange_weak(
                                // sync-relaxed-ok: monotone max CAS.
                                cur, other_max, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  // Owner-only by contract — no concurrent Record may be in flight, so
  // there is nothing to order; every store below is a plain reset.
  for (int i = 0; i < kBucketCount; ++i) {
    // sync-relaxed-ok: owner-only reset, see above.
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  // sync-relaxed-ok: owner-only reset, see above.
  count_.store(0, std::memory_order_relaxed);
  // sync-relaxed-ok: owner-only reset, see above.
  sum_.store(0, std::memory_order_relaxed);
  // sync-relaxed-ok: owner-only reset, see above.
  max_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  WriterLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  WriterLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::RegisterGauge(std::string_view name,
                                    std::function<int64_t()> fn) {
  WriterLock lock(mu_);
  gauges_[std::string(name)] = std::move(fn);
}

int64_t MetricsRegistry::GaugeValue(std::string_view name) const {
  std::function<int64_t()> fn;
  {
    ReaderLock lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) return 0;
    fn = it->second;
  }
  // Sampled outside the lock: gauge callbacks may touch structures that in
  // turn export metrics.
  return fn();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot the other registry's instrument pointers under its lock, then
  // merge without holding both locks at once (instruments are stable and
  // internally atomic).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    ReaderLock lock(other.mu_);
    counters.reserve(other.counters_.size());
    for (const auto& [name, c] : other.counters_) {
      counters.emplace_back(name, c.get());
    }
    histograms.reserve(other.histograms_.size());
    for (const auto& [name, h] : other.histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }
  for (const auto& [name, c] : counters) GetCounter(name)->MergeFrom(*c);
  for (const auto& [name, h] : histograms) GetHistogram(name)->MergeFrom(*h);
}

HistogramSnapshot MetricsRegistry::Snapshot(std::string_view name) const {
  const Histogram* h = nullptr;
  {
    ReaderLock lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) return {};
    h = it->second.get();
  }
  HistogramSnapshot snap;
  snap.count = h->count();
  snap.sum = h->sum();
  snap.mean = h->mean();
  snap.p50 = h->ValueAtPercentile(50);
  snap.p90 = h->ValueAtPercentile(90);
  snap.p99 = h->ValueAtPercentile(99);
  snap.max = h->max();
  return snap;
}

std::string MetricsRegistry::ExportPrometheus() const {
  // Copy the name -> instrument view under the lock, render outside it
  // (gauge callbacks must run unlocked).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<std::pair<std::string, std::function<int64_t()>>> gauges;
  {
    ReaderLock lock(mu_);
    for (const auto& [name, c] : counters_) {
      counters.emplace_back(name, c.get());
    }
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
    for (const auto& [name, fn] : gauges_) gauges.emplace_back(name, fn);
  }

  std::string out;
  for (const auto& [name, c] : counters) {
    Appendf(&out, "# TYPE %s counter\n", name.c_str());
    Appendf(&out, "%s %" PRIu64 "\n", name.c_str(), c->value());
  }
  for (const auto& [name, fn] : gauges) {
    Appendf(&out, "# TYPE %s gauge\n", name.c_str());
    Appendf(&out, "%s %lld\n", name.c_str(),
            static_cast<long long>(fn()));
  }
  for (const auto& [name, h] : histograms) {
    Appendf(&out, "# TYPE %s summary\n", name.c_str());
    Appendf(&out, "%s{quantile=\"0.5\"} %" PRIu64 "\n", name.c_str(),
            h->ValueAtPercentile(50));
    Appendf(&out, "%s{quantile=\"0.9\"} %" PRIu64 "\n", name.c_str(),
            h->ValueAtPercentile(90));
    Appendf(&out, "%s{quantile=\"0.99\"} %" PRIu64 "\n", name.c_str(),
            h->ValueAtPercentile(99));
    Appendf(&out, "%s{quantile=\"1\"} %" PRIu64 "\n", name.c_str(), h->max());
    Appendf(&out, "%s_sum %" PRIu64 "\n", name.c_str(), h->sum());
    Appendf(&out, "%s_count %" PRIu64 "\n", name.c_str(), h->count());
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<std::pair<std::string, std::function<int64_t()>>> gauges;
  {
    ReaderLock lock(mu_);
    for (const auto& [name, c] : counters_) {
      counters.emplace_back(name, c.get());
    }
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
    for (const auto& [name, fn] : gauges_) gauges.emplace_back(name, fn);
  }

  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters) {
    Appendf(&out, "%s\"%s\":%" PRIu64, first ? "" : ",", name.c_str(),
            c->value());
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, fn] : gauges) {
    Appendf(&out, "%s\"%s\":%lld", first ? "" : ",", name.c_str(),
            static_cast<long long>(fn()));
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    Appendf(&out,
            "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
            ",\"mean\":%.1f,\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
            ",\"p99\":%" PRIu64 ",\"max\":%" PRIu64 "}",
            first ? "" : ",", name.c_str(), h->count(), h->sum(), h->mean(),
            h->ValueAtPercentile(50), h->ValueAtPercentile(90),
            h->ValueAtPercentile(99), h->max());
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace vfps
