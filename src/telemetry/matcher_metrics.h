// Copyright 2026 The vfps Authors.
// The matcher's instrument bundle: the per-event phase breakdown the
// paper's Figures 3-4 are built from (phase-1 predicate testing vs phase-2
// cluster scanning), resolved once at attach time so the match loop only
// touches cached pointers. See docs/OBSERVABILITY.md for the catalog.

#ifndef VFPS_TELEMETRY_MATCHER_METRICS_H_
#define VFPS_TELEMETRY_MATCHER_METRICS_H_

#include <cstdint>

#include "src/telemetry/metrics.h"

namespace vfps {

/// Cached instrument pointers for one matcher (or one shard). All matchers
/// attached to the same registry share instruments; ShardedMatcher gives
/// each shard a private registry and merges (the instruments' MergeFrom)
/// at collection time.
struct MatcherTelemetry {
  Counter* events = nullptr;
  Counter* predicates_evaluated = nullptr;
  Counter* clusters_scanned = nullptr;
  Counter* subscription_checks = nullptr;
  Counter* matches = nullptr;
  Histogram* match_ns = nullptr;
  Histogram* phase1_ns = nullptr;
  Histogram* phase2_ns = nullptr;
  Histogram* batch_size = nullptr;
  Histogram* batch_ns = nullptr;

  /// Resolves the standard vfps_matcher_* instruments in `registry`.
  static MatcherTelemetry Create(MetricsRegistry* registry) {
    MatcherTelemetry t;
    t.events = registry->GetCounter("vfps_matcher_events_total");
    t.predicates_evaluated =
        registry->GetCounter("vfps_matcher_predicates_satisfied_total");
    t.clusters_scanned =
        registry->GetCounter("vfps_matcher_clusters_scanned_total");
    t.subscription_checks =
        registry->GetCounter("vfps_matcher_subscription_checks_total");
    t.matches = registry->GetCounter("vfps_matcher_matches_total");
    t.match_ns = registry->GetHistogram("vfps_matcher_match_ns");
    t.phase1_ns = registry->GetHistogram("vfps_matcher_phase1_ns");
    t.phase2_ns = registry->GetHistogram("vfps_matcher_phase2_ns");
    t.batch_size = registry->GetHistogram("vfps_matcher_batch_size");
    t.batch_ns = registry->GetHistogram("vfps_matcher_batch_ns");
    return t;
  }

  /// Records one matched event. `*_delta` are this event's contributions.
  void RecordEvent(int64_t phase1_nanos, int64_t phase2_nanos,
                   uint64_t predicates_delta, uint64_t clusters_delta,
                   uint64_t checks_delta, uint64_t matches_delta) {
    events->Inc();
    predicates_evaluated->Inc(predicates_delta);
    clusters_scanned->Inc(clusters_delta);
    subscription_checks->Inc(checks_delta);
    matches->Inc(matches_delta);
    phase1_ns->Record(phase1_nanos);
    phase2_ns->Record(phase2_nanos);
    match_ns->Record(phase1_nanos + phase2_nanos);
  }

  /// Records one MatchBatch call: how many events it carried and how long
  /// the whole batch took end to end.
  void RecordBatch(uint64_t size, int64_t batch_nanos) {
    batch_size->Record(static_cast<int64_t>(size));
    batch_ns->Record(batch_nanos);
  }

  /// Records a batched matcher's aggregate work counters. The native batch
  /// kernels bypass RecordEvent (there is no per-event wall time to put in
  /// the per-event histograms), but the counters must keep agreeing with
  /// the per-event path so dashboards do not fork on the ingest mode.
  void RecordBatchWork(uint64_t events_delta, uint64_t predicates_delta,
                       uint64_t clusters_delta, uint64_t checks_delta,
                       uint64_t matches_delta) {
    events->Inc(events_delta);
    predicates_evaluated->Inc(predicates_delta);
    clusters_scanned->Inc(clusters_delta);
    subscription_checks->Inc(checks_delta);
    matches->Inc(matches_delta);
  }

  /// Zeroes every instrument (the merge target does this before
  /// re-accumulating shard registries).
  void Reset() {
    events->Reset();
    predicates_evaluated->Reset();
    clusters_scanned->Reset();
    subscription_checks->Reset();
    matches->Reset();
    match_ns->Reset();
    phase1_ns->Reset();
    phase2_ns->Reset();
    batch_size->Reset();
    batch_ns->Reset();
  }
};

}  // namespace vfps

#endif  // VFPS_TELEMETRY_MATCHER_METRICS_H_
