// Copyright 2026 The vfps Authors.
// Runtime SIMD ISA selection for the hardware-conscious kernels
// (docs/KERNELS.md). The binary always carries every kernel variant its
// target architecture can express (the AVX2 translation unit is compiled
// with per-file arch flags, see src/CMakeLists.txt); which one runs is
// decided once at startup from cpuid/getauxval and can be overridden with
// the VFPS_SIMD environment variable (off|scalar|sse2|avx2|neon|auto) for
// testing and A/B ablations. The selection is process-global: matching is
// single-threaded per matcher and the sharded wrapper's threads only read
// the (atomic) active-ISA word.

#ifndef VFPS_UTIL_SIMD_H_
#define VFPS_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace vfps {

/// Instruction sets the kernels are specialized for, in dispatch-preference
/// order within one architecture (higher enum value = wider/faster).
/// kScalar is the portable reference implementation every other variant is
/// differentially verified against.
enum class SimdIsa : int {
  kScalar = 0,
  kSse2 = 1,   // x86-64 baseline: 128-bit stripe ops, SWAR row groups
  kAvx2 = 2,   // 256-bit stripe ops, 8-lane result-vector gathers
  kNeon = 3,   // AArch64 baseline: 128-bit stripe ops, SWAR row groups
};

/// Readable bytes callers must provide past the last addressable cell of a
/// result-vector buffer handed to the cluster kernels: the AVX2 per-event
/// kernel gathers 32-bit words at byte offsets, so testing the final cell
/// reads up to 3 bytes beyond it. ResultVector pads automatically; tests
/// and benches building raw buffers must over-allocate by this much.
inline constexpr size_t kSimdGatherSlack = 3;

/// Short lowercase name ("scalar", "sse2", "avx2", "neon").
const char* SimdIsaName(SimdIsa isa);

/// Parses a VFPS_SIMD-style mode string. "off", "scalar", and "none" all
/// mean kScalar; "auto" and "" mean "use the detected best" and return
/// nullopt, as does any unknown string (callers distinguish via the raw
/// text when they need to reject typos).
std::optional<SimdIsa> ParseSimdIsa(std::string_view mode);

/// The widest ISA this build AND this machine support, probed once (cpuid
/// via __builtin_cpu_supports on x86; NEON is architectural on AArch64).
SimdIsa DetectedSimdIsa();

/// Every ISA usable on this machine, narrowest first (always starts with
/// kScalar). The differential sweeps iterate this.
std::vector<SimdIsa> SupportedSimdIsas();

/// The ISA the kernels currently dispatch to. Initialized on first use from
/// DetectedSimdIsa(), narrowed by VFPS_SIMD if set (an unsupported or
/// unknown VFPS_SIMD value warns once on stderr and is ignored).
SimdIsa ActiveSimdIsa();

/// Forces the active ISA (tests, vfps_verify --simd, bench ablations).
/// Returns false — and changes nothing — if `isa` is not supported on this
/// machine/build. Not synchronized with in-flight Match calls; switch only
/// between matching episodes.
bool SetActiveSimdIsa(SimdIsa isa);

namespace simd {

/// dst[w] |= src[w] for w < words, through the active ISA's widest ops
/// (one 256-bit op on AVX2 for the batch pipeline's 4-word stripes).
/// Buffers need no alignment and must not alias.
void OrWords(uint64_t* dst, const uint64_t* src, size_t words);

/// words[0..count) = 0, through the active ISA's widest stores.
void ZeroWords(uint64_t* words, size_t count);

}  // namespace simd

}  // namespace vfps

#endif  // VFPS_UTIL_SIMD_H_
