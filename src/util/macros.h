// Copyright 2026 The vfps Authors.
// Common low-level macros: branch hints, assertions, prefetch.

#ifndef VFPS_UTIL_MACROS_H_
#define VFPS_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Branch prediction hints. Used in hot match kernels only.
#if defined(__GNUC__) || defined(__clang__)
#define VFPS_LIKELY(x) (__builtin_expect(!!(x), 1))
#define VFPS_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#else
#define VFPS_LIKELY(x) (x)
#define VFPS_UNLIKELY(x) (x)
#endif

/// Internal invariant check, enabled in debug builds only. Library code uses
/// this for conditions that indicate a bug in vfps itself, never for user
/// input validation (which reports through Status).
#ifndef NDEBUG
#define VFPS_DCHECK(cond)                                                  \
  do {                                                                     \
    if (VFPS_UNLIKELY(!(cond))) {                                          \
      std::fprintf(stderr, "VFPS_DCHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)
#else
#define VFPS_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

/// Always-on check for conditions that must hold even in release builds.
#define VFPS_CHECK(cond)                                                  \
  do {                                                                    \
    if (VFPS_UNLIKELY(!(cond))) {                                         \
      std::fprintf(stderr, "VFPS_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Expensive structural invariant check, enabled only under
/// -DVFPS_DEBUG_INVARIANTS (the `debug` and sanitizer CMake presets set
/// it). `expr` is typically a whole-structure walk such as
/// `CheckInvariants()` — O(n) or worse, far too slow for release paths —
/// and is not evaluated at all in other builds. The expression must return
/// true when the invariants hold; implementations print a description of
/// the first violation before returning false, so the abort message here
/// only needs to locate the call site.
#ifdef VFPS_DEBUG_INVARIANTS
#define VFPS_DCHECK_INVARIANT(expr)                                     \
  do {                                                                  \
    if (VFPS_UNLIKELY(!(expr))) {                                       \
      std::fprintf(stderr,                                              \
                   "VFPS_DCHECK_INVARIANT failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, #expr);                          \
      std::abort();                                                     \
    }                                                                   \
  } while (0)
#else
#define VFPS_DCHECK_INVARIANT(expr) \
  do {                              \
  } while (0)
#endif

#endif  // VFPS_UTIL_MACROS_H_
