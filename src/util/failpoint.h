// Copyright 2026 The vfps Authors.
// Fault-injection framework: a process-wide registry of named failure
// sites ("failpoints") that tests and operators can arm to make the
// server/broker wire path misbehave on purpose — error out, stall, write
// short, or drop the connection. Sites are placed with the
// VFPS_FAILPOINT(name) macro, which compiles to a constant no-op unless
// the build enables -DVFPS_FAILPOINTS=ON (CMake option), so production
// binaries carry zero overhead. See docs/ROBUSTNESS.md for the catalog of
// sites and how the chaos/soak tests drive them.
//
// Mode spec grammar (what Set() parses, and what the FAILPOINT wire verb
// forwards):
//
//   off             disarm the site
//   error           the site reports a failure
//   delay:<ms>      the site stalls for <ms> milliseconds, then proceeds
//   partial:<n>     the site processes at most <n> bytes (read/write sites)
//   close           the site drops the connection
//
// Any armed mode may carry a "%<trips>" suffix (e.g. "error%3"): the site
// auto-disarms after firing <trips> times. Chaos schedules use this so an
// injected read/parse fault can never wedge the admin channel that would
// turn it off.

#ifndef VFPS_UTIL_FAILPOINT_H_
#define VFPS_UTIL_FAILPOINT_H_

#ifndef VFPS_FAILPOINTS
#define VFPS_FAILPOINTS 0
#endif

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/util/status.h"
#include "src/util/sync.h"

namespace vfps {

/// What an armed failpoint tells its site to do. Default-constructed =
/// site disarmed (off() is true); the call site decides how each kind maps
/// onto its local failure semantics.
struct FailPointAction {
  enum class Kind : uint8_t { kOff, kError, kDelay, kPartial, kClose };
  Kind kind = Kind::kOff;
  /// delay: milliseconds to stall; partial: byte budget. 0 otherwise.
  int64_t arg = 0;
  bool off() const { return kind == Kind::kOff; }
};

/// The registry. Evaluate() is the hot call (one relaxed atomic load when
/// nothing is armed); Set/ClearAll/List take a mutex. Thread-safe: tests
/// arm failpoints from an admin connection or directly while the server
/// thread evaluates them.
class FailPoints {
 public:
  /// The process-wide instance every VFPS_FAILPOINT site consults.
  static FailPoints& Global();

  /// Parses `spec` (grammar above) and arms/disarms `name`. Unknown modes
  /// or malformed arguments answer InvalidArgument and change nothing.
  Status Set(const std::string& name, std::string_view spec);

  /// Disarms every site.
  void ClearAll();

  /// The action currently armed for `name`, counting a trip (and burning
  /// one shot of a "%<trips>" budget) when armed. Off when not.
  FailPointAction Evaluate(std::string_view name);

  /// "name=spec name=spec ..." for the armed sites (empty when none) —
  /// what the FAILPOINT LIST verb answers.
  std::string List() const;

  /// Total times any armed site fired (exported as the
  /// vfps_server_failpoint_trips gauge).
  uint64_t trips() const {
    // sync-relaxed-ok: monotone diagnostic counter; readers tolerate lag.
    return trips_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    FailPointAction action;
    int64_t remaining = -1;  // auto-disarm budget; -1 = unlimited
    std::string spec;        // original text, echoed by List()
  };

  mutable Mutex mu_{LockRank::kFailPoints, "failpoints"};
  std::map<std::string, Entry, std::less<>> points_ VFPS_GUARDED_BY(mu_);
  /// Armed-site count, mutated only under mu_; the lock-free Evaluate fast
  /// path reads it to skip the mutex when nothing is armed. A site armed
  /// concurrently with an Evaluate may be missed for one evaluation — an
  /// accepted, documented race (the chaos harness syncs via the wire).
  std::atomic<int> armed_{0};
  std::atomic<uint64_t> trips_{0};
};

#if VFPS_FAILPOINTS
#define VFPS_FAILPOINT(site) (::vfps::FailPoints::Global().Evaluate(site))
#else
// Constant off action: the branch testing it folds away entirely.
#define VFPS_FAILPOINT(site) (::vfps::FailPointAction{})
#endif

}  // namespace vfps

#endif  // VFPS_UTIL_FAILPOINT_H_
