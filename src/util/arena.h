// Copyright 2026 The vfps Authors.
// Bump-pointer arena allocator. Cluster columns and subscription lines are
// carved from arenas so that the columnar data of one cluster is contiguous
// (spatial locality, Section 2.3 of the paper) and so that memory accounting
// for the Figure 3(c) experiment is exact.

#ifndef VFPS_UTIL_ARENA_H_
#define VFPS_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace vfps {

/// A growable region allocator. Allocations are never freed individually;
/// the whole arena is released at destruction. Not thread-safe.
class Arena {
 public:
  /// Creates an arena whose first block holds `initial_block_bytes`.
  explicit Arena(size_t initial_block_bytes = 64 * 1024);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (a power of two).
  /// The returned memory is uninitialized and lives until the arena dies.
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t));

  /// Typed helper: allocates an uninitialized array of `count` T.
  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Total bytes handed out by Allocate() so far.
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total bytes reserved from the system (>= bytes_allocated()).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  void AddBlock(size_t min_bytes);

  std::vector<std::unique_ptr<uint8_t[]>> blocks_;
  uint8_t* ptr_ = nullptr;   // next free byte in the current block
  uint8_t* end_ = nullptr;   // one past the current block
  size_t next_block_bytes_;  // geometric growth
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace vfps

#endif  // VFPS_UTIL_ARENA_H_
