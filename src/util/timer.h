// Copyright 2026 The vfps Authors.
// Wall-clock stopwatch used by the benchmark harnesses.

#ifndef VFPS_UTIL_TIMER_H_
#define VFPS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace vfps {

/// Monotonic stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vfps

#endif  // VFPS_UTIL_TIMER_H_
