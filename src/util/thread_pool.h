// Copyright 2026 The vfps Authors.
// Minimal fixed-size thread pool for the sharded matcher extension. The
// paper's engine is single-threaded; the pool lets an application fan one
// event out across per-shard matchers (see matcher/sharded_matcher.h).

#ifndef VFPS_UTIL_THREAD_POOL_H_
#define VFPS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/macros.h"

namespace vfps {

/// Fixed worker pool executing submitted closures FIFO. Tasks must not
/// throw (the library is exception-free). Destruction drains the queue:
/// every task accepted by Submit runs before the workers exit. Submit
/// calls that race with Shutdown/destruction are well-defined — they are
/// rejected (return false) instead of enqueued; callers that outlive the
/// pool must simply not call Submit after the destructor has returned.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads) {
    VFPS_CHECK(num_threads >= 1);
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Stops accepting work, runs every already-accepted task, and joins
  /// the workers. Idempotent; called by the destructor. Exposed so tests
  /// (and callers that share the pool across threads) can force the
  /// drain while other threads still hold a reference to call Submit on
  /// — after Shutdown returns their Submits fail cleanly.
  void Shutdown() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      shutting_down_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  /// Enqueues a task. Returns true if the pool accepted it (it will run
  /// even if Shutdown begins immediately afterwards) and false if the
  /// pool is already shutting down (the task is destroyed, never run).
  [[nodiscard]] bool Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (shutting_down_) return false;
      queue_.push_back(std::move(task));
      ++pending_;
    }
    wake_.notify_one();
    return true;
  }

  /// Blocks until every task submitted so far has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return pending_ == 0; });
  }

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (shutting_down_) return;
          continue;
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t pending_ = 0;
  bool shutting_down_ = false;
};

}  // namespace vfps

#endif  // VFPS_UTIL_THREAD_POOL_H_
