// Copyright 2026 The vfps Authors.
// Minimal fixed-size thread pool for the sharded matcher extension. The
// paper's engine is single-threaded; the pool lets an application fan one
// event out across per-shard matchers (see matcher/sharded_matcher.h).
//
// Locking: one Mutex (LockRank::kThreadPool) guards the queue and
// lifecycle flags; tasks always run with it released, so a task may take
// any higher-ranked lock (failpoints, telemetry) but never re-enter the
// pool it runs on.

#ifndef VFPS_UTIL_THREAD_POOL_H_
#define VFPS_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/macros.h"
#include "src/util/sync.h"

namespace vfps {

/// Fixed worker pool executing submitted closures FIFO. Tasks must not
/// throw (the library is exception-free). Destruction drains the queue:
/// every task accepted by Submit runs before the workers exit. Submit
/// calls that race with Shutdown/destruction are well-defined — they are
/// rejected (return false) instead of enqueued; callers that outlive the
/// pool must simply not call Submit after the destructor has returned.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads) {
    VFPS_CHECK(num_threads >= 1);
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Stops accepting work, runs every already-accepted task, and joins
  /// the workers. Idempotent; called by the destructor. Exposed so tests
  /// (and callers that share the pool across threads) can force the
  /// drain while other threads still hold a reference to call Submit on
  /// — after Shutdown returns their Submits fail cleanly.
  void Shutdown() VFPS_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      shutting_down_ = true;
    }
    wake_.NotifyAll();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  /// Enqueues a task. Returns true if the pool accepted it (it will run
  /// even if Shutdown begins immediately afterwards) and false if the
  /// pool is already shutting down (the task is destroyed, never run).
  [[nodiscard]] bool Submit(std::function<void()> task) VFPS_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (shutting_down_) return false;
      queue_.push_back(std::move(task));
      ++pending_;
    }
    wake_.NotifyOne();
    return true;
  }

  /// Blocks until every task submitted so far has finished.
  void Wait() VFPS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (pending_ != 0) idle_.Wait(mu_);
  }

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop() VFPS_EXCLUDES(mu_) {
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (!shutting_down_ && queue_.empty()) wake_.Wait(mu_);
        // Shutdown drains: exit only once the queue is empty.
        if (queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        MutexLock lock(mu_);
        if (--pending_ == 0) idle_.NotifyAll();
      }
    }
  }

  Mutex mu_{LockRank::kThreadPool, "thread_pool"};
  CondVar wake_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ VFPS_GUARDED_BY(mu_);
  /// Written once by the constructor before any concurrent access;
  /// read-only afterwards (join/size), so unguarded by design.
  std::vector<std::thread> workers_;
  size_t pending_ VFPS_GUARDED_BY(mu_) = 0;
  bool shutting_down_ VFPS_GUARDED_BY(mu_) = false;
};

}  // namespace vfps

#endif  // VFPS_UTIL_THREAD_POOL_H_
