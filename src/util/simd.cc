// Copyright 2026 The vfps Authors.

#include "src/util/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define VFPS_SIMD_X86 1
#else
#define VFPS_SIMD_X86 0
#endif

#if defined(__aarch64__)
#define VFPS_SIMD_ARM 1
#else
#define VFPS_SIMD_ARM 0
#endif

namespace vfps {

namespace {

void OrWordsScalar(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t w = 0; w < words; ++w) dst[w] |= src[w];
}

void ZeroWordsScalar(uint64_t* words, size_t count) {
  for (size_t w = 0; w < count; ++w) words[w] = 0;
}

#if VFPS_SIMD_X86

void OrWordsSse2(uint64_t* dst, const uint64_t* src, size_t words) {
  size_t w = 0;
  for (; w + 2 <= words; w += 2) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + w));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + w));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w),
                     _mm_or_si128(a, b));
  }
  for (; w < words; ++w) dst[w] |= src[w];
}

void ZeroWordsSse2(uint64_t* words, size_t count) {
  const __m128i zero = _mm_setzero_si128();
  size_t w = 0;
  for (; w + 2 <= count; w += 2) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(words + w), zero);
  }
  for (; w < count; ++w) words[w] = 0;
}

// The word helpers are tiny enough to live here under a per-function
// target attribute instead of a dedicated -mavx2 translation unit; the
// full kernels (src/cluster/kernels_avx2.cc) use per-file flags.
__attribute__((target("avx2"))) void OrWordsAvx2(uint64_t* dst,
                                                 const uint64_t* src,
                                                 size_t words) {
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(a, b));
  }
  for (; w < words; ++w) dst[w] |= src[w];
}

__attribute__((target("avx2"))) void ZeroWordsAvx2(uint64_t* words,
                                                   size_t count) {
  const __m256i zero = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= count; w += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + w), zero);
  }
  for (; w < count; ++w) words[w] = 0;
}

#endif  // VFPS_SIMD_X86

using OrWordsFn = void (*)(uint64_t*, const uint64_t*, size_t);
using ZeroWordsFn = void (*)(uint64_t*, size_t);

std::atomic<OrWordsFn> g_or_words{&OrWordsScalar};
std::atomic<ZeroWordsFn> g_zero_words{&ZeroWordsScalar};

/// Installs the word-op implementations matching `isa`. NEON's 128-bit ops
/// on two 64-bit lanes compile to the same load/or/store sequence GCC
/// emits for the scalar loop, so AArch64 keeps the scalar helpers.
void InstallWordOps(SimdIsa isa) {
  OrWordsFn or_fn = &OrWordsScalar;
  ZeroWordsFn zero_fn = &ZeroWordsScalar;
#if VFPS_SIMD_X86
  if (isa == SimdIsa::kSse2) {
    or_fn = &OrWordsSse2;
    zero_fn = &ZeroWordsSse2;
  } else if (isa == SimdIsa::kAvx2) {
    or_fn = &OrWordsAvx2;
    zero_fn = &ZeroWordsAvx2;
  }
#else
  (void)isa;
#endif
  // sync-relaxed-ok: fn-pointer dispatch — the pointed-to code is immutable
  // and every candidate is valid, so readers need no ordering with this
  // store (they get either the old or the new function, both correct).
  g_or_words.store(or_fn, std::memory_order_relaxed);
  // sync-relaxed-ok: same fn-pointer dispatch rationale as above.
  g_zero_words.store(zero_fn, std::memory_order_relaxed);
}

SimdIsa ProbeDetectedIsa() {
#if VFPS_SIMD_X86
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return SimdIsa::kAvx2;
#endif
  return SimdIsa::kSse2;  // architectural baseline on x86-64
#elif VFPS_SIMD_ARM
  return SimdIsa::kNeon;  // architectural baseline on AArch64
#else
  return SimdIsa::kScalar;
#endif
}

/// Resolves the startup ISA: the detected best, narrowed by VFPS_SIMD.
SimdIsa ResolveStartupIsa() {
  const SimdIsa detected = ProbeDetectedIsa();
  const char* env = std::getenv("VFPS_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return detected;
  }
  const std::optional<SimdIsa> wanted = ParseSimdIsa(env);
  if (!wanted.has_value()) {
    std::fprintf(stderr,
                 "vfps: unknown VFPS_SIMD value '%s' ignored "
                 "(off|scalar|sse2|avx2|neon|auto); using %s\n",
                 env, SimdIsaName(detected));
    return detected;
  }
  for (SimdIsa isa : SupportedSimdIsas()) {
    if (isa == *wanted) return *wanted;
  }
  std::fprintf(stderr,
               "vfps: VFPS_SIMD=%s not supported on this machine/build; "
               "using %s\n",
               env, SimdIsaName(detected));
  return detected;
}

std::atomic<SimdIsa>& ActiveIsaStorage() {
  static std::atomic<SimdIsa> active{[] {
    const SimdIsa isa = ResolveStartupIsa();
    InstallWordOps(isa);
    return isa;
  }()};
  return active;
}

}  // namespace

const char* SimdIsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kSse2:
      return "sse2";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "?";
}

std::optional<SimdIsa> ParseSimdIsa(std::string_view mode) {
  if (mode == "off" || mode == "scalar" || mode == "none") {
    return SimdIsa::kScalar;
  }
  if (mode == "sse2") return SimdIsa::kSse2;
  if (mode == "avx2") return SimdIsa::kAvx2;
  if (mode == "neon") return SimdIsa::kNeon;
  return std::nullopt;
}

SimdIsa DetectedSimdIsa() {
  static const SimdIsa detected = ProbeDetectedIsa();
  return detected;
}

std::vector<SimdIsa> SupportedSimdIsas() {
  std::vector<SimdIsa> isas{SimdIsa::kScalar};
#if VFPS_SIMD_X86
  isas.push_back(SimdIsa::kSse2);
  if (DetectedSimdIsa() == SimdIsa::kAvx2) isas.push_back(SimdIsa::kAvx2);
#elif VFPS_SIMD_ARM
  isas.push_back(SimdIsa::kNeon);
#endif
  return isas;
}

SimdIsa ActiveSimdIsa() {
  // sync-relaxed-ok: standalone enum snapshot; no data is published
  // through it (the dispatch pointers are their own atomics).
  return ActiveIsaStorage().load(std::memory_order_relaxed);
}

bool SetActiveSimdIsa(SimdIsa isa) {
  bool supported = false;
  for (SimdIsa s : SupportedSimdIsas()) supported = supported || s == isa;
  if (!supported) return false;
  // sync-relaxed-ok: standalone enum for introspection; correctness lives
  // in the fn-pointer atomics installed below.
  ActiveIsaStorage().store(isa, std::memory_order_relaxed);
  InstallWordOps(isa);
  return true;
}

namespace simd {

void OrWords(uint64_t* dst, const uint64_t* src, size_t words) {
  // sync-relaxed-ok: fn-pointer dispatch on the hot loop; any installed
  // candidate is valid, so no acquire edge is needed.
  g_or_words.load(std::memory_order_relaxed)(dst, src, words);
}

void ZeroWords(uint64_t* words, size_t count) {
  // sync-relaxed-ok: same fn-pointer dispatch rationale as OrWords.
  g_zero_words.load(std::memory_order_relaxed)(words, count);
}

}  // namespace simd

}  // namespace vfps
