// Copyright 2026 The vfps Authors.

#include "src/util/failpoint.h"

#include <charconv>

namespace vfps {

namespace {

bool ParseInt64(std::string_view word, int64_t* out) {
  auto [ptr, ec] =
      std::from_chars(word.data(), word.data() + word.size(), *out);
  return ec == std::errc() && ptr == word.data() + word.size();
}

/// Parses the mode spec into an action + auto-disarm budget. Returns a
/// non-OK status on malformed input.
Status ParseSpec(std::string_view spec, FailPointAction* action,
                 int64_t* remaining) {
  *action = FailPointAction{};
  *remaining = -1;
  const size_t pct = spec.find('%');
  if (pct != std::string_view::npos) {
    if (!ParseInt64(spec.substr(pct + 1), remaining) || *remaining <= 0) {
      return Status::InvalidArgument("bad trip count in failpoint spec: " +
                                     std::string(spec));
    }
    spec = spec.substr(0, pct);
  }
  std::string_view mode = spec;
  std::string_view arg;
  const size_t colon = spec.find(':');
  if (colon != std::string_view::npos) {
    mode = spec.substr(0, colon);
    arg = spec.substr(colon + 1);
  }
  if (mode == "off") {
    if (!arg.empty()) {
      return Status::InvalidArgument("off takes no argument");
    }
    action->kind = FailPointAction::Kind::kOff;
    return Status::OK();
  }
  if (mode == "error" || mode == "close") {
    if (!arg.empty()) {
      return Status::InvalidArgument(std::string(mode) +
                                     " takes no argument");
    }
    action->kind = mode == "error" ? FailPointAction::Kind::kError
                                   : FailPointAction::Kind::kClose;
    return Status::OK();
  }
  if (mode == "delay" || mode == "partial") {
    if (!ParseInt64(arg, &action->arg) || action->arg < 0) {
      return Status::InvalidArgument(std::string(mode) +
                                     " needs a non-negative integer, got: " +
                                     std::string(spec));
    }
    action->kind = mode == "delay" ? FailPointAction::Kind::kDelay
                                   : FailPointAction::Kind::kPartial;
    return Status::OK();
  }
  return Status::InvalidArgument(
      "unknown failpoint mode: " + std::string(spec) +
      " (want off | error | delay:<ms> | partial:<n> | close, optional "
      "%<trips>)");
}

}  // namespace

FailPoints& FailPoints::Global() {
  static FailPoints* instance = new FailPoints();
  return *instance;
}

Status FailPoints::Set(const std::string& name, std::string_view spec) {
  if (name.empty()) return Status::InvalidArgument("failpoint needs a name");
  FailPointAction action;
  int64_t remaining;
  VFPS_RETURN_NOT_OK(ParseSpec(spec, &action, &remaining));
  MutexLock lock(mu_);
  Entry& entry = points_[name];
  const bool was_armed = !entry.action.off();
  const bool now_armed = !action.off();
  entry.action = action;
  entry.remaining = now_armed ? remaining : -1;
  entry.spec = std::string(spec);
  if (was_armed != now_armed) {
    // sync-relaxed-ok: fast-path gate, mutated under mu_; see failpoint.h.
    armed_.fetch_add(now_armed ? 1 : -1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void FailPoints::ClearAll() {
  MutexLock lock(mu_);
  points_.clear();
  // sync-relaxed-ok: armed_ only gates the Evaluate fast path; stragglers
  // fall through to the mutex and see the cleared map.
  armed_.store(0, std::memory_order_relaxed);
}

FailPointAction FailPoints::Evaluate(std::string_view name) {
  // sync-relaxed-ok: lock-free fast path; a just-armed site may be missed
  // for one evaluation, which the failpoint contract allows (failpoint.h).
  if (armed_.load(std::memory_order_relaxed) == 0) return {};
  MutexLock lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || it->second.action.off()) return {};
  Entry& entry = it->second;
  // sync-relaxed-ok: monotone diagnostic counter (gauge export only).
  trips_.fetch_add(1, std::memory_order_relaxed);
  const FailPointAction action = entry.action;
  if (entry.remaining > 0 && --entry.remaining == 0) {
    entry.action = FailPointAction{};
    entry.spec = "off";
    // sync-relaxed-ok: fast-path gate, mutated under mu_; see failpoint.h.
    armed_.fetch_sub(1, std::memory_order_relaxed);
  }
  return action;
}

std::string FailPoints::List() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, entry] : points_) {
    if (entry.action.off()) continue;
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += entry.spec;
  }
  return out;
}

}  // namespace vfps
