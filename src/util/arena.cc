// Copyright 2026 The vfps Authors.

#include "src/util/arena.h"

#include "src/util/macros.h"

namespace vfps {

Arena::Arena(size_t initial_block_bytes)
    : next_block_bytes_(initial_block_bytes) {
  VFPS_CHECK(initial_block_bytes > 0);
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  VFPS_DCHECK((alignment & (alignment - 1)) == 0);
  uintptr_t p = reinterpret_cast<uintptr_t>(ptr_);
  uintptr_t aligned = (p + alignment - 1) & ~(alignment - 1);
  size_t needed = (aligned - p) + bytes;
  if (ptr_ == nullptr || static_cast<size_t>(end_ - ptr_) < needed) {
    AddBlock(bytes + alignment);
    p = reinterpret_cast<uintptr_t>(ptr_);
    aligned = (p + alignment - 1) & ~(alignment - 1);
    needed = (aligned - p) + bytes;
  }
  ptr_ += needed;
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void Arena::AddBlock(size_t min_bytes) {
  size_t size = next_block_bytes_;
  if (size < min_bytes) size = min_bytes;
  blocks_.push_back(std::make_unique<uint8_t[]>(size));
  ptr_ = blocks_.back().get();
  end_ = ptr_ + size;
  bytes_reserved_ += size;
  // Geometric growth, capped so huge subscription sets don't overshoot.
  if (next_block_bytes_ < (64u << 20)) next_block_bytes_ *= 2;
}

}  // namespace vfps
