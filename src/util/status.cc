// Copyright 2026 The vfps Authors.

#include "src/util/status.h"

namespace vfps {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace vfps
