// Copyright 2026 The vfps Authors.
// Epoch-based reclamation for the lock-free subscription-churn path
// (docs/CONCURRENCY.md, "Epoch-based snapshots"). The scheme is the classic
// three-piece design:
//
//   * readers pin the current epoch in a per-reader slot before touching
//     any published snapshot and unpin on exit (EpochManager::PinGuard);
//   * writers publish replacement snapshots with an atomic pointer swap
//     (EpochPtr / EpochSlotArray — the only sanctioned swap primitives,
//     enforced by scripts/check_sync_discipline.sh) and push the superseded
//     version onto an epoch-stamped limbo list (Retire);
//   * a superseded version is destroyed only once every reader slot is
//     either free or pinned at a later epoch than its retirement
//     (TryReclaim), so no reader can still hold a reference.
//
// Memory-ordering contract: every operation on the global epoch, the
// reader slots, and published pointers is seq_cst. The correctness
// argument runs over the single total order S of seq_cst operations: for a
// reader pin P followed (program order) by a snapshot load L, and a writer
// swap W followed by a slot scan C, either C observes P — and the reader's
// epoch blocks reclamation — or C precedes P in S, hence W precedes L and
// the reader observes the post-swap pointer, never the retired version.
// x86 makes the loads free and the pin's RMW one locked instruction; this
// is not a hot-loop cost worth relaxing, and seq_cst keeps the proof
// two lines long.
//
// Lock ranking: the limbo list is guarded by a Mutex at
// LockRank::kEpochReclaim; deleters always run with it released (they may
// touch writer-side state such as the predicate table, whose lock-free
// callers run under LockRank::kChurnWriter < kEpochReclaim).

#ifndef VFPS_UTIL_EPOCH_H_
#define VFPS_UTIL_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include "src/util/macros.h"
#include "src/util/sync.h"

namespace vfps {

/// Epoch clock, reader slots, and the limbo list of one churn domain
/// (typically one per ChurnMatcher; shards have independent managers).
class EpochManager {
 public:
  /// Concurrent reader limit. Pins beyond this spin-wait for a slot to
  /// free up; 64 cache-line-sized slots cost 4 KiB and cover any sane
  /// thread count.
  static constexpr size_t kMaxReaders = 64;

  EpochManager() = default;
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // --- reader side (lock-free) ---------------------------------------------

  /// Claims a reader slot and pins the current epoch in it. Returns the
  /// slot index (stable for the duration of the pin; usable as a scratch
  /// index, see ReaderLocal). Spin-waits when all slots are busy.
  size_t Pin();

  /// Releases the pin taken by Pin(); the slot becomes claimable again.
  void Unpin(size_t slot);

  /// RAII pin for the scope of one read-side operation.
  class PinGuard {
   public:
    explicit PinGuard(EpochManager* manager)
        : manager_(manager), slot_(manager->Pin()) {}
    ~PinGuard() { manager_->Unpin(slot_); }

    PinGuard(const PinGuard&) = delete;
    PinGuard& operator=(const PinGuard&) = delete;

    /// The pinned reader slot (dense in [0, kMaxReaders)).
    size_t slot() const { return slot_; }

   private:
    EpochManager* manager_;
    size_t slot_;
  };

  /// True when the calling thread currently holds any epoch pin (on any
  /// manager). TryReclaim refuses under a pin; tests assert the refusal.
  static bool CallerPinned();

  // --- writer side -----------------------------------------------------------

  /// Stamps `deleter` with the current epoch, advances the epoch, and
  /// queues it on the limbo list. The deleter runs from a later
  /// TryReclaim() once every reader pinned at or before the stamped epoch
  /// has unpinned. Callers must have already unlinked the object from all
  /// published pointers (EpochPtr/EpochSlotArray::Publish do this).
  void Retire(std::function<void()> deleter);

  /// Runs the deleters of every limbo entry whose epoch has drained.
  /// Refuses (returns 0) when the calling thread holds a pin — reclaiming
  /// under one's own pin could destroy the snapshot being read. Deleters
  /// run with the limbo lock released. Returns the number reclaimed.
  size_t TryReclaim();

  /// Waits until every reader pinned before the call has unpinned (new
  /// pins may overlap freely). The two-phase reorganizer move publishes
  /// the target-list add, synchronizes, then publishes the source-list
  /// remove: any reader that could miss the subscription in the target
  /// snapshot is guaranteed to still find it in the source snapshot.
  void SynchronizeReaders();

  // --- introspection (vfps_epoch_* gauges) -----------------------------------

  /// Reader slots currently pinned.
  size_t pinned_readers() const;
  /// Limbo entries awaiting reclamation.
  size_t limbo_depth() const;
  /// Deleters run since construction.
  uint64_t reclaimed_total() const { return reclaimed_total_.load(); }
  /// Retire() calls since construction.
  uint64_t retired_total() const { return retired_total_.load(); }
  /// Current epoch value (starts at 1, advances once per Retire /
  /// SynchronizeReaders).
  uint64_t current_epoch() const { return global_epoch_.load(); }

 private:
  /// Sentinel stored in a free reader slot; doubles as "no pin" in the
  /// min-scan (any retirement epoch is below it).
  static constexpr uint64_t kFreeSlot = ~uint64_t{0};

  struct alignas(64) ReaderSlot {
    std::atomic<uint64_t> epoch{kFreeSlot};
  };

  /// Smallest pinned epoch across all reader slots (kFreeSlot when none).
  uint64_t MinPinnedEpoch() const;

  std::atomic<uint64_t> global_epoch_{1};
  ReaderSlot slots_[kMaxReaders];

  struct RetiredEntry {
    uint64_t epoch;
    std::function<void()> deleter;
  };

  mutable Mutex limbo_mu_{LockRank::kEpochReclaim, "epoch_limbo"};
  /// Epoch-ordered FIFO (Retire stamps under the lock, so epochs are
  /// monotone front to back and reclamation pops a prefix).
  std::deque<RetiredEntry> limbo_ VFPS_GUARDED_BY(limbo_mu_);

  std::atomic<uint64_t> retired_total_{0};
  std::atomic<uint64_t> reclaimed_total_{0};
};

/// A single published-snapshot slot. Readers Load() under a pin; writers
/// Publish() a replacement and the superseded snapshot is retired to the
/// manager's limbo list. This and EpochSlotArray are the only places an
/// atomic pointer swap may live (lint rule: sync-epoch-ok).
template <typename T>
class EpochPtr {
 public:
  EpochPtr() = default;
  ~EpochPtr() { delete ptr_.load(); }

  EpochPtr(const EpochPtr&) = delete;
  EpochPtr& operator=(const EpochPtr&) = delete;

  /// Current snapshot (may be nullptr before the first Publish). Caller
  /// must hold an epoch pin on the owning manager.
  T* Load() const { return ptr_.load(); }

  /// Swaps in `next` (ownership transfers to this slot) and retires the
  /// superseded snapshot via `manager`.
  void Publish(T* next, EpochManager* manager) {
    T* old = ptr_.exchange(next);
    if (old != nullptr) {
      manager->Retire([old] { delete old; });
    }
  }

 private:
  std::atomic<T*> ptr_{nullptr};
};

/// A grow-only array of published-snapshot slots indexed by a dense id
/// (PredicateId for the per-access-predicate cluster lists). Two-level:
/// a fixed directory of lazily allocated chunks, so readers never observe
/// a directory relocation and writers touch exactly one slot per publish.
template <typename T>
class EpochSlotArray {
 public:
  EpochSlotArray() : dir_(new std::atomic<Chunk*>[kMaxChunks]) {
    for (size_t c = 0; c < kMaxChunks; ++c) dir_[c].store(nullptr);
  }

  ~EpochSlotArray() {
    for (size_t c = 0; c < kMaxChunks; ++c) {
      Chunk* chunk = dir_[c].load();
      if (chunk == nullptr) continue;
      for (size_t s = 0; s < kChunkSize; ++s) delete chunk->slots[s].load();
      delete chunk;
    }
  }

  EpochSlotArray(const EpochSlotArray&) = delete;
  EpochSlotArray& operator=(const EpochSlotArray&) = delete;

  /// Snapshot at `index`, or nullptr. Caller must hold an epoch pin.
  T* Load(size_t index) const {
    const Chunk* chunk = dir_[index >> kChunkBits].load();
    if (chunk == nullptr) return nullptr;
    return chunk->slots[index & (kChunkSize - 1)].load();
  }

  /// Swaps `next` (may be nullptr to clear) into slot `index` and retires
  /// the superseded snapshot. Writer-side only (callers serialize).
  void Publish(size_t index, T* next, EpochManager* manager) {
    T* old = EnsureChunk(index)->slots[index & (kChunkSize - 1)].exchange(
        next);
    if (old != nullptr) {
      manager->Retire([old] { delete old; });
    }
  }

  /// Largest publishable index + 1.
  static constexpr size_t max_slots() { return kMaxChunks * kChunkSize; }

 private:
  static constexpr size_t kChunkBits = 10;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  /// 4096 chunks x 1024 slots = 4M ids; the directory itself is 32 KiB
  /// and allocated eagerly so it never moves.
  static constexpr size_t kMaxChunks = 4096;

  struct Chunk {
    std::atomic<T*> slots[kChunkSize] = {};
  };

  Chunk* EnsureChunk(size_t index) {
    const size_t c = index >> kChunkBits;
    VFPS_CHECK(c < kMaxChunks);
    Chunk* chunk = dir_[c].load();
    if (chunk == nullptr) {
      chunk = new Chunk();
      dir_[c].store(chunk);  // single writer: no CAS needed
    }
    return chunk;
  }

  std::unique_ptr<std::atomic<Chunk*>[]> dir_;
};

/// Per-reader-slot scratch objects (match contexts): slot `i` is used
/// exclusively by whichever thread holds reader pin `i`, so after the
/// one-time allocation race there is no sharing.
template <typename T>
class ReaderLocal {
 public:
  ReaderLocal() = default;
  ~ReaderLocal() {
    for (auto& slot : slots_) delete slot.load();
  }

  ReaderLocal(const ReaderLocal&) = delete;
  ReaderLocal& operator=(const ReaderLocal&) = delete;

  /// The scratch object of reader slot `slot`, created on first use.
  template <typename Factory>
  T* GetOrCreate(size_t slot, Factory&& make) {
    VFPS_DCHECK(slot < EpochManager::kMaxReaders);
    T* existing = slots_[slot].load();
    if (existing != nullptr) return existing;
    T* fresh = make();
    T* expected = nullptr;
    if (!slots_[slot].compare_exchange_strong(expected, fresh)) {
      delete fresh;
      return expected;
    }
    return fresh;
  }

  /// Visits every allocated scratch object (writer-side aggregation; the
  /// caller must tolerate concurrent mutation of the visited objects).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& slot : slots_) {
      T* p = slot.load();
      if (p != nullptr) fn(p);
    }
  }

 private:
  std::atomic<T*> slots_[EpochManager::kMaxReaders] = {};
};

}  // namespace vfps

#endif  // VFPS_UTIL_EPOCH_H_
