// Copyright 2026 The vfps Authors.
// Arrow-style Status / Result error handling. The library never throws.

#ifndef VFPS_UTIL_STATUS_H_
#define VFPS_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

#include "src/util/macros.h"

namespace vfps {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kResourceExhausted = 4,
  kInternal = 5,
  kUnavailable = 6,
  kDeadlineExceeded = 7,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: either OK, or a code plus message.
/// OK carries no allocation; error states allocate a small message block.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Named constructors for each error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  /// The status code; kOk when ok().
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// The error message; empty when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  std::shared_ptr<State> state_;  // nullptr == OK
};

/// Either a value of type T or an error Status. Use `ok()` before `value()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    VFPS_DCHECK(!std::get<Status>(rep_).ok());
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status; Status::OK() if a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// The contained value. Requires ok().
  const T& value() const& {
    VFPS_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    VFPS_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    VFPS_CHECK(ok());
    return std::get<T>(std::move(rep_));
  }

 private:
  std::variant<T, Status> rep_;
};

/// Whether the failed operation is worth retrying: the request itself was
/// well-formed but the environment refused it (connection loss, timeout,
/// overload shedding). InvalidArgument / NotFound / Internal failures are
/// deterministic and retrying them cannot help.
inline bool IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

/// Propagates a non-OK status out of the current function.
#define VFPS_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::vfps::Status _st = (expr);            \
    if (VFPS_UNLIKELY(!_st.ok())) return _st; \
  } while (0)

}  // namespace vfps

#endif  // VFPS_UTIL_STATUS_H_
