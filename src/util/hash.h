// Copyright 2026 The vfps Authors.
// 64-bit mixing and combining primitives used by the predicate table and the
// multi-attribute hash structures.

#ifndef VFPS_UTIL_HASH_H_
#define VFPS_UTIL_HASH_H_

#include <cstdint>

namespace vfps {

/// Finalizer from MurmurHash3 (fmix64): bijective avalanche mix of a 64-bit
/// word. Good enough to hash integer attribute values directly.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-dependent combination of a running hash with a new 64-bit word.
/// Used to hash multi-attribute value tuples (the tuple order is the sorted
/// schema order, so equal tuples always hash equal).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  // Constant is 2^64 / phi, the usual Fibonacci hashing multiplier.
  return Mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

}  // namespace vfps

#endif  // VFPS_UTIL_HASH_H_
