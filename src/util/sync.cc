// Copyright 2026 The vfps Authors.
// Runtime lock-rank validator and serial-entry violation reporting for
// src/util/sync.h. Everything here is compiled only under
// VFPS_DEBUG_INVARIANTS; release builds get an empty translation unit.

#include "src/util/sync.h"

#ifdef VFPS_DEBUG_INVARIANTS

#include <cstdio>
#include <cstdlib>

#if defined(__GLIBC__) || defined(__APPLE__)
#include <execinfo.h>
#define VFPS_SYNC_HAVE_BACKTRACE 1
#else
#define VFPS_SYNC_HAVE_BACKTRACE 0
#endif

namespace vfps {
namespace sync_internal {

namespace {

constexpr int kMaxFrames = 32;
/// Locks held simultaneously by one thread. The deepest legal chain today
/// is three (verify harness -> thread pool -> telemetry); 64 is a bug
/// backstop, not a design budget.
constexpr int kMaxHeld = 64;

struct HeldLock {
  const void* mu = nullptr;
  uint32_t rank = 0;
  const char* name = nullptr;
  void* frames[kMaxFrames];
  int frame_count = 0;
};

thread_local HeldLock tls_held[kMaxHeld];
thread_local int tls_depth = 0;

void PrintStack(const char* label, void* const* frames, int count) {
  std::fprintf(stderr, "%s\n", label);
#if VFPS_SYNC_HAVE_BACKTRACE
  if (count > 0) {
    backtrace_symbols_fd(const_cast<void* const*>(frames), count,
                         /*fd=*/2);
    return;
  }
#else
  (void)frames;
  (void)count;
#endif
  std::fprintf(stderr, "  (no backtrace available on this platform)\n");
}

int CaptureStack(void** frames) {
#if VFPS_SYNC_HAVE_BACKTRACE
  return backtrace(frames, kMaxFrames);
#else
  (void)frames;
  return 0;
#endif
}

}  // namespace

void NoteAcquire(const void* mu, uint32_t rank, const char* name) {
  // Any already-held lock of equal or higher rank makes this acquisition
  // an ordering violation; report the worst offender. Equal rank on the
  // same object is re-entrant acquisition (guaranteed deadlock); equal
  // rank on a different object is a potential AB/BA deadlock between two
  // instances of the same subsystem — both are hierarchy bugs.
  const HeldLock* conflict = nullptr;
  for (int i = 0; i < tls_depth; ++i) {
    if (tls_held[i].rank >= rank &&
        (conflict == nullptr || tls_held[i].rank > conflict->rank)) {
      conflict = &tls_held[i];
    }
  }
  if (conflict != nullptr) {
    std::fprintf(
        stderr,
        "vfps lock-rank violation: acquiring '%s' (rank %u%s) while "
        "holding '%s' (rank %u)\n"
        "locks must be acquired in strictly increasing LockRank order; "
        "see docs/CONCURRENCY.md\n",
        name, rank, conflict->mu == mu ? ", re-entrant on the same lock" : "",
        conflict->name, conflict->rank);
    void* frames[kMaxFrames];
    const int n = CaptureStack(frames);
    PrintStack("--- stack of the out-of-order acquisition:", frames, n);
    PrintStack("--- stack where the conflicting lock was acquired:",
               conflict->frames, conflict->frame_count);
    std::abort();
  }
  if (tls_depth == kMaxHeld) {
    std::fprintf(stderr,
                 "vfps lock-rank validator: thread holds %d locks at once "
                 "acquiring '%s' — raise kMaxHeld if this is intentional\n",
                 kMaxHeld, name);
    std::abort();
  }
  HeldLock& held = tls_held[tls_depth++];
  held.mu = mu;
  held.rank = rank;
  held.name = name;
  held.frame_count = CaptureStack(held.frames);
}

void NoteRelease(const void* mu) {
  // Releases need not be LIFO; search newest-first (the common case).
  for (int i = tls_depth - 1; i >= 0; --i) {
    if (tls_held[i].mu == mu) {
      tls_held[i] = tls_held[--tls_depth];
      return;
    }
  }
  std::fprintf(stderr,
               "vfps lock-rank validator: released a lock this thread does "
               "not hold (did a lock bypass the vfps::Mutex wrapper?)\n");
  std::abort();
}

void DieSerialViolation(const char* active_site, const char* entering_site) {
  std::fprintf(
      stderr,
      "vfps serial-contract violation: thread entering '%s' while another "
      "thread is inside '%s' of a single-threaded-by-contract component "
      "(see docs/CONCURRENCY.md)\n",
      entering_site != nullptr ? entering_site : "?",
      active_site != nullptr ? active_site : "?");
  void* frames[kMaxFrames];
  const int n = CaptureStack(frames);
  PrintStack("--- stack of the violating entry:", frames, n);
  std::abort();
}

}  // namespace sync_internal
}  // namespace vfps

#endif  // VFPS_DEBUG_INVARIANTS
