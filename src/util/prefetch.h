// Copyright 2026 The vfps Authors.
// Portable wrapper around the processor prefetch instruction.
//
// The paper (Section 2.2) issues assembly-level prefetch instructions from
// the cluster matching kernels so that the next UNFOLD-wide stripe of each
// predicate column is in cache by the time the scan reaches it. We use the
// compiler builtin, which lowers to PREFETCHT0 on x86 and PRFM on AArch64;
// on unsupported compilers it degrades to a no-op, which is always correct
// (prefetch is advisory).

#ifndef VFPS_UTIL_PREFETCH_H_
#define VFPS_UTIL_PREFETCH_H_

namespace vfps {

/// Hints the CPU to fetch the cache line containing `addr` into all cache
/// levels for a read in the near future. Never faults, even on invalid
/// addresses, so callers may prefetch a few elements past the end of an
/// array without guarding.
inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

/// Size in bytes of a cache line on every platform we target. UNFOLD values
/// in the cluster kernels are derived from this.
inline constexpr int kCacheLineBytes = 64;

}  // namespace vfps

#endif  // VFPS_UTIL_PREFETCH_H_
