// Copyright 2026 The vfps Authors.
// Capability-annotated synchronization primitives. Every lock in vfps goes
// through the wrappers here — raw std::mutex / std::shared_mutex /
// std::condition_variable are confined to this directory (enforced by
// scripts/check_sync_discipline.sh) — so that
//
//   1. Clang's thread-safety analysis (-Wthread-safety, on for every clang
//      build) proves at compile time that guarded state is only touched
//      with its lock held (see docs/CONCURRENCY.md for the conventions),
//   2. the debug-build lock-rank validator proves at runtime that locks
//      are only ever acquired in increasing LockRank order — the dynamic
//      orderings (cross-object, cross-subsystem) that static analysis
//      cannot see — aborting with both acquisition stacks on violation,
//   3. single-threaded-by-contract components (Broker, PubSubServer) get a
//      cheap debug checker (SerialChecker) that aborts when two threads
//      enter them concurrently.
//
// The rank validator and SerialChecker compile to nothing unless
// VFPS_DEBUG_INVARIANTS is defined (the debug/asan presets); in release
// builds vfps::Mutex is exactly std::mutex plus a constant member.
//
// VFPS_NO_THREAD_SAFETY_ANALYSIS is the documented escape hatch for code
// the analysis cannot model. Policy: zero uses outside src/util/sync.h;
// any new use must be listed in the waiver table of docs/CONCURRENCY.md.

#ifndef VFPS_UTIL_SYNC_H_
#define VFPS_UTIL_SYNC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>

// --- Clang thread-safety annotation macros -----------------------------------
// GCC compiles the annotations away; clang (any version with the capability
// attribute) checks them. The macro names mirror the attribute vocabulary of
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define VFPS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef VFPS_THREAD_ANNOTATION
#define VFPS_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define VFPS_CAPABILITY(x) VFPS_THREAD_ANNOTATION(capability(x))
/// Marks an RAII class whose constructor acquires and destructor releases.
#define VFPS_SCOPED_CAPABILITY VFPS_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only with the named capability held.
#define VFPS_GUARDED_BY(x) VFPS_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is guarded by the named capability.
#define VFPS_PT_GUARDED_BY(x) VFPS_THREAD_ANNOTATION(pt_guarded_by(x))
/// Static ordering hints between capabilities visible to one another.
/// Instances of different classes cannot name each other here, so the
/// enforced ordering mechanism in vfps is the runtime LockRank validator;
/// these remain available for same-class member pairs.
#define VFPS_ACQUIRED_AFTER(...) \
  VFPS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define VFPS_ACQUIRED_BEFORE(...) \
  VFPS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
/// Function requires the capability held (exclusively / shared) on entry.
#define VFPS_REQUIRES(...) \
  VFPS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VFPS_REQUIRES_SHARED(...) \
  VFPS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires / releases the capability.
#define VFPS_ACQUIRE(...) \
  VFPS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VFPS_ACQUIRE_SHARED(...) \
  VFPS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define VFPS_RELEASE(...) \
  VFPS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VFPS_RELEASE_SHARED(...) \
  VFPS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability when returning the given value.
#define VFPS_TRY_ACQUIRE(...) \
  VFPS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define VFPS_TRY_ACQUIRE_SHARED(...) \
  VFPS_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
/// Function must be called without the capability held (deadlock guard).
#define VFPS_EXCLUDES(...) VFPS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (trusted by the analysis).
#define VFPS_ASSERT_CAPABILITY(x) VFPS_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the named capability.
#define VFPS_RETURN_CAPABILITY(x) VFPS_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: function body is not analyzed. See the policy above.
#define VFPS_NO_THREAD_SAFETY_ANALYSIS \
  VFPS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vfps {

// --- Lock-rank hierarchy ------------------------------------------------------

/// The single documented lock hierarchy (docs/CONCURRENCY.md keeps the
/// authoritative table). Locks must be acquired in strictly increasing
/// rank order within a thread; under VFPS_DEBUG_INVARIANTS any violation —
/// including re-entrant acquisition of the same lock — aborts with the
/// acquisition stacks of both locks involved. Gaps between values leave
/// room for the epoch/churn locks of the planned lock-free subscription
/// work without renumbering.
enum class LockRank : uint32_t {
  /// Differential-verification harness serialization (outermost: matching
  /// and telemetry run beneath it on the same thread).
  kVerifyHarness = 100,
  /// Broker subscription-bookkeeping lock (user-subscription maps and the
  /// expiry heap under concurrent churn). Never held across matcher calls,
  /// but ranked below the churn writer so a future nesting stays ordered.
  kBrokerSubs = 120,
  /// ChurnMatcher writer lock: serializes subscribe/unsubscribe/reorganize
  /// against each other (readers never take it). Held while retiring
  /// superseded snapshots, so it ranks below kEpochReclaim.
  kChurnWriter = 150,
  /// ThreadPool queue/lifecycle lock (sharded matcher fan-out).
  kThreadPool = 200,
  /// Net-server worker→loop handoff (src/net/server.cc): the completed
  /// request-result queue and export-wait latches. Taken briefly by the
  /// event loop and the match worker to post/swap results; never held
  /// while calling into the broker, the socket layer, or any other lock.
  kNetResults = 230,
  /// EpochManager limbo-list lock (src/util/epoch.h). Leaf-like: taken
  /// from writer paths to retire and reclaim; deleters always run with it
  /// released.
  kEpochReclaim = 250,
  /// Fault-injection registry (armed from admin paths, evaluated on the
  /// server thread; never held while calling out).
  kFailPoints = 300,
  /// Telemetry registry instrument maps (leaf: safe to take from any
  /// subsystem; gauge callbacks always run with it released).
  kTelemetry = 400,
};

namespace sync_internal {
#ifdef VFPS_DEBUG_INVARIANTS
/// Rank-checks and records an acquisition by the current thread. Called
/// before blocking on the underlying lock so ordering violations abort
/// instead of deadlocking. Aborts (with both stacks) on violation.
void NoteAcquire(const void* mu, uint32_t rank, const char* name);
/// Forgets a recorded acquisition. Aborts if `mu` is not held.
void NoteRelease(const void* mu);
/// Reports a SerialChecker violation and aborts.
[[noreturn]] void DieSerialViolation(const char* active_site,
                                     const char* entering_site);
#else
inline void NoteAcquire(const void*, uint32_t, const char*) {}
inline void NoteRelease(const void*) {}
#endif
}  // namespace sync_internal

// --- Mutex --------------------------------------------------------------------

class CondVar;

/// An annotated std::mutex carrying a LockRank. Prefer the MutexLock RAII
/// guard; explicit Lock/Unlock exist for the rare non-scoped pattern.
class VFPS_CAPABILITY("mutex") Mutex {
 public:
  /// Every Mutex names its place in the hierarchy; `name` shows up in
  /// lock-rank violation reports.
  explicit Mutex(LockRank rank, const char* name = "mutex")
      : rank_(static_cast<uint32_t>(rank)), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() VFPS_ACQUIRE() {
    sync_internal::NoteAcquire(this, rank_, name_);
    mu_.lock();
  }

  void Unlock() VFPS_RELEASE() {
    mu_.unlock();
    sync_internal::NoteRelease(this);
  }

  /// Non-blocking acquire. A TryLock cannot deadlock, but vfps still holds
  /// it to the rank order: trylock-based designs that need to probe
  /// against the hierarchy must be redesigned, not waived.
  bool TryLock() VFPS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    sync_internal::NoteAcquire(this, rank_, name_);
    return true;
  }

  LockRank rank() const { return static_cast<LockRank>(rank_); }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const uint32_t rank_;
  const char* const name_;
};

/// RAII exclusive lock on a Mutex.
class VFPS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VFPS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() VFPS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// --- SharedMutex --------------------------------------------------------------

/// An annotated std::shared_mutex (reader/writer lock) with the same rank
/// discipline. Shared re-acquisition on the same thread counts as a rank
/// violation: it can deadlock behind a queued writer.
class VFPS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank, const char* name = "shared_mutex")
      : rank_(static_cast<uint32_t>(rank)), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() VFPS_ACQUIRE() {
    sync_internal::NoteAcquire(this, rank_, name_);
    mu_.lock();
  }

  void Unlock() VFPS_RELEASE() {
    mu_.unlock();
    sync_internal::NoteRelease(this);
  }

  void LockShared() VFPS_ACQUIRE_SHARED() {
    sync_internal::NoteAcquire(this, rank_, name_);
    mu_.lock_shared();
  }

  void UnlockShared() VFPS_RELEASE_SHARED() {
    mu_.unlock_shared();
    sync_internal::NoteRelease(this);
  }

  bool TryLock() VFPS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    sync_internal::NoteAcquire(this, rank_, name_);
    return true;
  }

  LockRank rank() const { return static_cast<LockRank>(rank_); }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const uint32_t rank_;
  const char* const name_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class VFPS_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) VFPS_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() VFPS_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class VFPS_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) VFPS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() VFPS_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// --- CondVar ------------------------------------------------------------------

/// Condition variable paired with vfps::Mutex. Wait() is intentionally the
/// only waiting primitive and takes no predicate: callers write the
/// `while (!condition) cv.Wait(mu);` loop themselves, which keeps the
/// guarded predicate reads inside the annotated caller where the analysis
/// can see them (a predicate lambda would be analyzed as an unlocked
/// context) and makes spurious-wakeup handling structurally impossible to
/// forget.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; `mu` is re-held on return. The
  /// rank validator treats `mu` as held across the wait: from the caller's
  /// perspective it is, and the thread acquires nothing while blocked, so
  /// no ordering violation can hide in the gap.
  void Wait(Mutex& mu) VFPS_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    // The wrapper's bookkeeping still owns the mutex: hand it back without
    // unlocking.
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// --- SerialChecker ------------------------------------------------------------

/// Debug-build checker for single-threaded-by-contract components (Broker,
/// PubSubServer): each guarded entry point opens a VFPS_SERIAL_SCOPE; if
/// two threads are ever inside scopes of the same checker at once, the
/// process aborts naming both entry points. Re-entrancy from the owning
/// thread (Publish -> notification handler -> Publish) is legal and
/// counted. Release builds compile the checker and its scopes to nothing.
class SerialChecker {
 public:
  SerialChecker() = default;
  SerialChecker(const SerialChecker&) = delete;
  SerialChecker& operator=(const SerialChecker&) = delete;

#ifdef VFPS_DEBUG_INVARIANTS
  class Scope {
   public:
    Scope(SerialChecker* checker, const char* site) : checker_(checker) {
      const std::thread::id self = std::this_thread::get_id();
      if (checker_->owner_.load(std::memory_order_acquire) == self) {
        ++checker_->depth_;
        return;
      }
      std::thread::id none{};
      if (!checker_->owner_.compare_exchange_strong(
              none, self, std::memory_order_acq_rel)) {
        sync_internal::DieSerialViolation(
            checker_->site_.load(std::memory_order_relaxed), site);
      }
      checker_->depth_ = 1;
      checker_->site_.store(site, std::memory_order_relaxed);
    }

    ~Scope() {
      if (--checker_->depth_ == 0) {
        checker_->owner_.store(std::thread::id{}, std::memory_order_release);
      }
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SerialChecker* checker_;
  };

 private:
  std::atomic<std::thread::id> owner_{};
  /// Only the owning thread mutates depth_ between its acquire of owner_
  /// and the releasing store, so a plain int is race-free.
  int depth_ = 0;
  /// Diagnostic only: the entry point the owner came through. Read by the
  /// violating thread without further synchronization — the value may be
  /// an instant stale, which is fine for an abort message.
  std::atomic<const char*> site_{nullptr};
#else
  class Scope {
   public:
    Scope(SerialChecker*, const char*) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };
#endif
};

#define VFPS_SYNC_CONCAT_INNER(a, b) a##b
#define VFPS_SYNC_CONCAT(a, b) VFPS_SYNC_CONCAT_INNER(a, b)

/// Opens a serial-entry scope on `checker` for the rest of the enclosing
/// block, tagged with the enclosing function's name.
#define VFPS_SERIAL_SCOPE(checker)                                    \
  ::vfps::SerialChecker::Scope VFPS_SYNC_CONCAT(vfps_serial_scope_,   \
                                                __LINE__)(&(checker), \
                                                          __func__)

/// Conditional serial scope: enforced only when `enabled` is true. Entry
/// points that are single-threaded by default but legally concurrent in an
/// opt-in mode (Broker subscribe/unsubscribe under concurrent churn) use
/// this so the contract stays checked in the default mode.
#define VFPS_SERIAL_SCOPE_IF(checker, enabled)                              \
  std::optional<::vfps::SerialChecker::Scope> VFPS_SYNC_CONCAT(             \
      vfps_serial_scope_, __LINE__);                                        \
  if (enabled) {                                                            \
    VFPS_SYNC_CONCAT(vfps_serial_scope_, __LINE__).emplace(&(checker),      \
                                                           __func__);       \
  }                                                                         \
  static_assert(true, "require a trailing semicolon")

}  // namespace vfps

#endif  // VFPS_UTIL_SYNC_H_
