// Copyright 2026 The vfps Authors.
// Deterministic pseudo-random generators for the workload generator and the
// property tests. We avoid <random>'s distributions because their results
// differ across standard libraries; vfps workloads must be reproducible
// bit-for-bit from a seed on any platform.

#ifndef VFPS_UTIL_RNG_H_
#define VFPS_UTIL_RNG_H_

#include <cstdint>

#include "src/util/macros.h"

namespace vfps {

/// SplitMix64: tiny, fast generator used to seed Xoshiro and for one-off
/// hashing of seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 pseudo-random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: the main generator. Fast, high quality, 256-bit state.
class Rng {
 public:
  /// Seeds the full state from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  /// Next 64 pseudo-random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t Below(uint64_t bound) {
    VFPS_DCHECK(bound > 0);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (VFPS_UNLIKELY(lo < bound)) {
      const uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    VFPS_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p` of returning true.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace vfps

#endif  // VFPS_UTIL_RNG_H_
