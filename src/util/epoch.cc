// Copyright 2026 The vfps Authors.

#include "src/util/epoch.h"

#include <vector>

namespace vfps {
namespace {

/// Depth of epoch pins held by this thread, across all managers. Guards
/// the reclaim-while-pinned refusal: a deleter freed under the caller's
/// own pin could be the very snapshot the caller is reading.
thread_local int tls_pin_depth = 0;

/// Last slot this thread pinned successfully; starting the claim scan
/// there makes the common case (stable reader threads) a single CAS.
thread_local size_t tls_slot_hint = 0;

}  // namespace

EpochManager::~EpochManager() {
  // Owner-managed teardown: all readers must have unpinned (the matcher
  // destructor runs after every Match call has returned). Run the
  // remaining deleters so retired snapshots are not leaked.
  VFPS_CHECK(pinned_readers() == 0);
  TryReclaim();
  MutexLock lock(limbo_mu_);
  VFPS_CHECK(limbo_.empty());
}

size_t EpochManager::Pin() {
  uint64_t epoch = global_epoch_.load();
  for (;;) {
    for (size_t i = 0; i < kMaxReaders; ++i) {
      const size_t slot = (tls_slot_hint + i) % kMaxReaders;
      uint64_t expected = kFreeSlot;
      // One CAS claims the slot and pins the epoch in the same step, so a
      // writer scan can never observe a claimed-but-unpinned slot.
      if (slots_[slot].epoch.compare_exchange_strong(expected, epoch)) {
        tls_slot_hint = slot;
        ++tls_pin_depth;
        return slot;
      }
    }
    // All slots busy: wait for a reader to finish, then re-read the epoch
    // so the eventual pin is as fresh as possible.
    std::this_thread::yield();
    epoch = global_epoch_.load();
  }
}

void EpochManager::Unpin(size_t slot) {
  VFPS_DCHECK(slot < kMaxReaders);
  VFPS_DCHECK(slots_[slot].epoch.load() != kFreeSlot);
  VFPS_DCHECK(tls_pin_depth > 0);
  --tls_pin_depth;
  slots_[slot].epoch.store(kFreeSlot);
}

bool EpochManager::CallerPinned() { return tls_pin_depth > 0; }

void EpochManager::Retire(std::function<void()> deleter) {
  retired_total_.fetch_add(1);
  MutexLock lock(limbo_mu_);
  // Stamp under the lock so limbo_ stays epoch-ordered even if two writer
  // domains ever share a manager.
  const uint64_t epoch = global_epoch_.fetch_add(1);
  limbo_.push_back(RetiredEntry{epoch, std::move(deleter)});
}

size_t EpochManager::TryReclaim() {
  if (CallerPinned()) return 0;
  const uint64_t min_pinned = MinPinnedEpoch();
  std::vector<std::function<void()>> ready;
  {
    MutexLock lock(limbo_mu_);
    while (!limbo_.empty() && limbo_.front().epoch < min_pinned) {
      ready.push_back(std::move(limbo_.front().deleter));
      limbo_.pop_front();
    }
  }
  // Deleters run with the limbo lock released: they may take writer-side
  // locks (e.g. none today, but the rank contract promises it).
  for (auto& deleter : ready) deleter();
  reclaimed_total_.fetch_add(ready.size());
  return ready.size();
}

void EpochManager::SynchronizeReaders() {
  // Every pin taken before this advance carries an epoch <= fence; wait
  // until no slot holds one. Pins taken afterwards load a larger epoch
  // and do not delay us.
  const uint64_t fence = global_epoch_.fetch_add(1);
  for (;;) {
    bool drained = true;
    for (const ReaderSlot& slot : slots_) {
      if (slot.epoch.load() <= fence) {
        drained = false;
        break;
      }
    }
    if (drained) return;
    std::this_thread::yield();
  }
}

size_t EpochManager::pinned_readers() const {
  size_t pinned = 0;
  for (const ReaderSlot& slot : slots_) {
    if (slot.epoch.load() != kFreeSlot) ++pinned;
  }
  return pinned;
}

size_t EpochManager::limbo_depth() const {
  MutexLock lock(limbo_mu_);
  return limbo_.size();
}

uint64_t EpochManager::MinPinnedEpoch() const {
  uint64_t min_pinned = kFreeSlot;
  for (const ReaderSlot& slot : slots_) {
    const uint64_t epoch = slot.epoch.load();
    if (epoch < min_pinned) min_pinned = epoch;
  }
  return min_pinned;
}

}  // namespace vfps
