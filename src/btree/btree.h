// Copyright 2026 The vfps Authors.
// In-memory B+-tree. The paper (§2.3) indexes inequality predicates with
// "simple B-Trees"; this template is that substrate. Keys live in wide
// sorted arrays inside fixed-size nodes so that lookups and range scans walk
// contiguous memory (cache-conscious, in the spirit of Rao & Ross [13]),
// and leaves are doubly linked so a range scan touches only leaves.
//
// Keys are unique (the predicate interning layer guarantees one entry per
// distinct predicate value). Deletion rebalances by borrowing from or
// merging with siblings, so occupancy stays >= 50% outside the root.

#ifndef VFPS_BTREE_BTREE_H_
#define VFPS_BTREE_BTREE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "src/util/macros.h"

namespace vfps {

/// B+-tree mapping unique keys of type K to payloads of type V.
/// kFanout is the max entry count per node (leaf and internal alike).
template <typename K, typename V, int kFanout = 32>
class BPlusTree {
  static_assert(kFanout >= 4, "fanout too small for rebalancing");

 public:
  BPlusTree() = default;
  ~BPlusTree() { Clear(); }

  /// Deep copy via bulk re-insertion of the leaf chain in ascending order
  /// (keys arrive sorted, so rebuild cost is O(n log n) node walks with no
  /// rebalancing churn). Needed by the churn matcher's copy-on-write index
  /// planes, which clone one attribute's indexes per mutation.
  BPlusTree(const BPlusTree& other) {
    other.ScanAll([this](const K& k, const V& v) { Insert(k, v); });
  }
  BPlusTree& operator=(const BPlusTree& other) {
    if (this != &other) {
      Clear();
      other.ScanAll([this](const K& k, const V& v) { Insert(k, v); });
    }
    return *this;
  }

  /// Move transfers ownership of the whole tree; the source is left empty.
  BPlusTree(BPlusTree&& other) noexcept { Swap(other); }
  BPlusTree& operator=(BPlusTree&& other) noexcept {
    if (this != &other) {
      Clear();
      Swap(other);
    }
    return *this;
  }

  /// Inserts (key, value). Returns false (and changes nothing) if the key
  /// is already present.
  bool Insert(const K& key, const V& value) {
    if (root_ == nullptr) {
      LeafNode* leaf = NewLeaf();
      leaf->keys[0] = key;
      leaf->values[0] = value;
      leaf->count = 1;
      root_ = leaf;
      height_ = 1;
      size_ = 1;
      return true;
    }
    SplitResult split;
    if (!InsertRec(root_, height_, key, value, &split)) return false;
    if (split.new_node != nullptr) {
      InternalNode* new_root = NewInternal();
      new_root->keys[0] = split.separator;
      new_root->children[0] = root_;
      new_root->children[1] = split.new_node;
      new_root->count = 1;
      root_ = new_root;
      ++height_;
    }
    ++size_;
    return true;
  }

  /// Removes `key`. Returns false if absent.
  bool Erase(const K& key) {
    if (root_ == nullptr) return false;
    if (!EraseRec(root_, height_, key)) return false;
    --size_;
    // Shrink the root when it degenerates.
    if (height_ > 1) {
      InternalNode* r = AsInternal(root_);
      if (r->count == 0) {
        root_ = r->children[0];
        delete r;
        --height_;
      }
    } else if (AsLeaf(root_)->count == 0) {
      delete AsLeaf(root_);
      root_ = nullptr;
      height_ = 0;
    }
    return true;
  }

  /// Pointer to the payload for `key`, or nullptr if absent. The pointer is
  /// invalidated by the next Insert/Erase.
  V* Find(const K& key) {
    LeafNode* leaf = FindLeaf(key);
    if (leaf == nullptr) return nullptr;
    int i = LowerBound(leaf->keys, leaf->count, key);
    if (i < leaf->count && leaf->keys[i] == key) return &leaf->values[i];
    return nullptr;
  }
  const V* Find(const K& key) const {
    return const_cast<BPlusTree*>(this)->Find(key);
  }

  /// Visits every (key, value) with key in the given bounds, ascending.
  /// A disengaged bound means unbounded on that side. `fn` is called as
  /// fn(const K&, const V&).
  template <typename Fn>
  void ScanRange(std::optional<K> lo, bool lo_inclusive, std::optional<K> hi,
                 bool hi_inclusive, Fn&& fn) const {
    if (root_ == nullptr) return;
    const LeafNode* leaf;
    int i;
    if (lo.has_value()) {
      leaf = const_cast<BPlusTree*>(this)->FindLeaf(*lo);
      i = LowerBound(leaf->keys, leaf->count, *lo);
      if (!lo_inclusive && i < leaf->count && leaf->keys[i] == *lo) ++i;
    } else {
      leaf = LeftmostLeaf();
      i = 0;
    }
    while (leaf != nullptr) {
      for (; i < leaf->count; ++i) {
        const K& k = leaf->keys[i];
        if (hi.has_value()) {
          if (hi_inclusive ? (k > *hi) : (k >= *hi)) return;
        }
        fn(k, leaf->values[i]);
      }
      leaf = leaf->next;
      i = 0;
    }
  }

  /// Visits all entries in ascending key order.
  template <typename Fn>
  void ScanAll(Fn&& fn) const {
    ScanRange(std::nullopt, true, std::nullopt, true, std::forward<Fn>(fn));
  }

  /// Number of entries.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tree height in levels (0 when empty, 1 for a lone leaf).
  int height() const { return height_; }

  /// Removes all entries.
  void Clear() {
    if (root_ != nullptr) FreeRec(root_, height_);
    root_ = nullptr;
    height_ = 0;
    size_ = 0;
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const {
    return leaf_nodes_ * sizeof(LeafNode) +
           internal_nodes_ * sizeof(InternalNode);
  }

  /// Validates structural invariants (ordering, occupancy, leaf links).
  /// For tests; aborts via VFPS_CHECK on violation.
  void CheckInvariants() const {
    if (root_ == nullptr) {
      VFPS_CHECK(size_ == 0 && height_ == 0);
      return;
    }
    size_t counted = 0;
    CheckRec(root_, height_, /*is_root=*/true, nullptr, nullptr, &counted);
    VFPS_CHECK(counted == size_);
    // Leaf chain must be sorted end to end and cover all entries.
    const LeafNode* leaf = LeftmostLeaf();
    size_t chained = 0;
    const K* prev = nullptr;
    while (leaf != nullptr) {
      for (int i = 0; i < leaf->count; ++i) {
        if (prev != nullptr) VFPS_CHECK(*prev < leaf->keys[i]);
        prev = &leaf->keys[i];
        ++chained;
      }
      if (leaf->next != nullptr) VFPS_CHECK(leaf->next->prev == leaf);
      leaf = leaf->next;
    }
    VFPS_CHECK(chained == size_);
  }

 private:
  void Swap(BPlusTree& other) {
    std::swap(root_, other.root_);
    std::swap(height_, other.height_);
    std::swap(size_, other.size_);
    std::swap(leaf_nodes_, other.leaf_nodes_);
    std::swap(internal_nodes_, other.internal_nodes_);
  }

  struct LeafNode;
  struct InternalNode;

  static constexpr int kMinEntries = kFanout / 2;

  struct LeafNode {
    int count = 0;
    K keys[kFanout];
    V values[kFanout];
    LeafNode* next = nullptr;
    LeafNode* prev = nullptr;
  };

  struct InternalNode {
    // `count` separator keys and `count + 1` children.
    int count = 0;
    K keys[kFanout];
    void* children[kFanout + 1];
  };

  struct SplitResult {
    K separator{};
    void* new_node = nullptr;
  };

  static LeafNode* AsLeaf(void* n) { return static_cast<LeafNode*>(n); }
  static const LeafNode* AsLeaf(const void* n) {
    return static_cast<const LeafNode*>(n);
  }
  static InternalNode* AsInternal(void* n) {
    return static_cast<InternalNode*>(n);
  }
  static const InternalNode* AsInternal(const void* n) {
    return static_cast<const InternalNode*>(n);
  }

  LeafNode* NewLeaf() {
    ++leaf_nodes_;
    return new LeafNode();
  }
  InternalNode* NewInternal() {
    ++internal_nodes_;
    return new InternalNode();
  }

  static int LowerBound(const K* keys, int count, const K& key) {
    return static_cast<int>(std::lower_bound(keys, keys + count, key) - keys);
  }
  /// Child slot to descend into: first key strictly greater than `key`.
  static int ChildIndex(const InternalNode* n, const K& key) {
    return static_cast<int>(
        std::upper_bound(n->keys, n->keys + n->count, key) - n->keys);
  }

  LeafNode* FindLeaf(const K& key) {
    void* node = root_;
    if (node == nullptr) return nullptr;
    for (int level = height_; level > 1; --level) {
      InternalNode* in = AsInternal(node);
      node = in->children[ChildIndex(in, key)];
    }
    return AsLeaf(node);
  }

  const LeafNode* LeftmostLeaf() const {
    const void* node = root_;
    for (int level = height_; level > 1; --level) {
      node = AsInternal(node)->children[0];
    }
    return AsLeaf(node);
  }

  // --- Insert -------------------------------------------------------------

  bool InsertRec(void* node, int level, const K& key, const V& value,
                 SplitResult* split) {
    if (level == 1) return InsertLeaf(AsLeaf(node), key, value, split);
    InternalNode* in = AsInternal(node);
    int ci = ChildIndex(in, key);
    SplitResult child_split;
    if (!InsertRec(in->children[ci], level - 1, key, value, &child_split)) {
      return false;
    }
    if (child_split.new_node != nullptr) {
      InsertIntoInternal(in, ci, child_split, split);
    } else {
      split->new_node = nullptr;
    }
    return true;
  }

  bool InsertLeaf(LeafNode* leaf, const K& key, const V& value,
                  SplitResult* split) {
    split->new_node = nullptr;
    int i = LowerBound(leaf->keys, leaf->count, key);
    if (i < leaf->count && leaf->keys[i] == key) return false;
    if (leaf->count < kFanout) {
      ShiftRight(leaf, i);
      leaf->keys[i] = key;
      leaf->values[i] = value;
      ++leaf->count;
      return true;
    }
    // Split: left keeps the lower half, right gets the upper half.
    LeafNode* right = NewLeaf();
    int mid = kFanout / 2;
    right->count = kFanout - mid;
    std::copy(leaf->keys + mid, leaf->keys + kFanout, right->keys);
    std::copy(leaf->values + mid, leaf->values + kFanout, right->values);
    leaf->count = mid;
    right->next = leaf->next;
    right->prev = leaf;
    if (right->next != nullptr) right->next->prev = right;
    leaf->next = right;
    // Insert into the proper half.
    if (key < right->keys[0]) {
      InsertLeaf(leaf, key, value, split);
    } else {
      InsertLeaf(right, key, value, split);
    }
    split->separator = right->keys[0];
    split->new_node = right;
    return true;
  }

  void InsertIntoInternal(InternalNode* in, int ci,
                          const SplitResult& child_split, SplitResult* split) {
    split->new_node = nullptr;
    if (in->count < kFanout) {
      for (int k = in->count; k > ci; --k) {
        in->keys[k] = in->keys[k - 1];
        in->children[k + 1] = in->children[k];
      }
      in->keys[ci] = child_split.separator;
      in->children[ci + 1] = child_split.new_node;
      ++in->count;
      return;
    }
    // Split the internal node around its middle separator.
    InternalNode* right = NewInternal();
    int mid = kFanout / 2;
    K up_key = in->keys[mid];
    right->count = kFanout - mid - 1;
    std::copy(in->keys + mid + 1, in->keys + kFanout, right->keys);
    std::copy(in->children + mid + 1, in->children + kFanout + 1,
              right->children);
    in->count = mid;
    // Re-insert the pending separator into the correct half.
    SplitResult dummy;
    if (child_split.separator < up_key) {
      InsertIntoInternal(in, ci, child_split, &dummy);
    } else {
      InsertIntoInternal(right, ci - mid - 1, child_split, &dummy);
    }
    split->separator = up_key;
    split->new_node = right;
  }

  static void ShiftRight(LeafNode* leaf, int from) {
    for (int k = leaf->count; k > from; --k) {
      leaf->keys[k] = leaf->keys[k - 1];
      leaf->values[k] = leaf->values[k - 1];
    }
  }

  // --- Erase --------------------------------------------------------------

  bool EraseRec(void* node, int level, const K& key) {
    if (level == 1) {
      LeafNode* leaf = AsLeaf(node);
      int i = LowerBound(leaf->keys, leaf->count, key);
      if (i >= leaf->count || leaf->keys[i] != key) return false;
      for (int k = i; k + 1 < leaf->count; ++k) {
        leaf->keys[k] = leaf->keys[k + 1];
        leaf->values[k] = leaf->values[k + 1];
      }
      --leaf->count;
      return true;
    }
    InternalNode* in = AsInternal(node);
    int ci = ChildIndex(in, key);
    if (!EraseRec(in->children[ci], level - 1, key)) return false;
    FixUnderflow(in, ci, level - 1);
    return true;
  }

  /// Restores occupancy of in->children[ci] (at `child_level`) by borrowing
  /// from or merging with an adjacent sibling.
  void FixUnderflow(InternalNode* in, int ci, int child_level) {
    if (child_level == 1) {
      LeafNode* child = AsLeaf(in->children[ci]);
      if (child->count >= kMinEntries) return;
      if (ci > 0 && AsLeaf(in->children[ci - 1])->count > kMinEntries) {
        LeafNode* left = AsLeaf(in->children[ci - 1]);
        ShiftRight(child, 0);
        child->keys[0] = left->keys[left->count - 1];
        child->values[0] = left->values[left->count - 1];
        ++child->count;
        --left->count;
        in->keys[ci - 1] = child->keys[0];
        return;
      }
      if (ci < in->count && AsLeaf(in->children[ci + 1])->count > kMinEntries) {
        LeafNode* right = AsLeaf(in->children[ci + 1]);
        child->keys[child->count] = right->keys[0];
        child->values[child->count] = right->values[0];
        ++child->count;
        for (int k = 0; k + 1 < right->count; ++k) {
          right->keys[k] = right->keys[k + 1];
          right->values[k] = right->values[k + 1];
        }
        --right->count;
        in->keys[ci] = right->keys[0];
        return;
      }
      // Merge with a sibling (prefer left so we always merge rightward).
      int li = (ci > 0) ? ci - 1 : ci;  // merge children[li] <- children[li+1]
      LeafNode* left = AsLeaf(in->children[li]);
      LeafNode* right = AsLeaf(in->children[li + 1]);
      std::copy(right->keys, right->keys + right->count,
                left->keys + left->count);
      std::copy(right->values, right->values + right->count,
                left->values + left->count);
      left->count += right->count;
      left->next = right->next;
      if (left->next != nullptr) left->next->prev = left;
      delete right;
      --leaf_nodes_;
      RemoveChild(in, li);
      return;
    }
    InternalNode* child = AsInternal(in->children[ci]);
    if (child->count + 1 > kMinEntries) return;  // child has >= kMin children
    if (ci > 0 && AsInternal(in->children[ci - 1])->count + 1 > kMinEntries) {
      InternalNode* left = AsInternal(in->children[ci - 1]);
      for (int k = child->count; k > 0; --k) {
        child->keys[k] = child->keys[k - 1];
        child->children[k + 1] = child->children[k];
      }
      child->children[1] = child->children[0];
      child->keys[0] = in->keys[ci - 1];
      child->children[0] = left->children[left->count];
      ++child->count;
      in->keys[ci - 1] = left->keys[left->count - 1];
      --left->count;
      return;
    }
    if (ci < in->count &&
        AsInternal(in->children[ci + 1])->count + 1 > kMinEntries) {
      InternalNode* right = AsInternal(in->children[ci + 1]);
      child->keys[child->count] = in->keys[ci];
      child->children[child->count + 1] = right->children[0];
      ++child->count;
      in->keys[ci] = right->keys[0];
      right->children[0] = right->children[1];
      for (int k = 0; k + 1 < right->count; ++k) {
        right->keys[k] = right->keys[k + 1];
        right->children[k + 1] = right->children[k + 2];
      }
      --right->count;
      return;
    }
    int li = (ci > 0) ? ci - 1 : ci;
    InternalNode* left = AsInternal(in->children[li]);
    InternalNode* right = AsInternal(in->children[li + 1]);
    left->keys[left->count] = in->keys[li];
    std::copy(right->keys, right->keys + right->count,
              left->keys + left->count + 1);
    std::copy(right->children, right->children + right->count + 1,
              left->children + left->count + 1);
    left->count += right->count + 1;
    delete right;
    --internal_nodes_;
    RemoveChild(in, li);
  }

  /// Removes separator keys[li] and child children[li + 1] from `in`.
  static void RemoveChild(InternalNode* in, int li) {
    for (int k = li; k + 1 < in->count; ++k) {
      in->keys[k] = in->keys[k + 1];
      in->children[k + 1] = in->children[k + 2];
    }
    --in->count;
  }

  // --- Teardown / checking ------------------------------------------------

  void FreeRec(void* node, int level) {
    if (level == 1) {
      delete AsLeaf(node);
      --leaf_nodes_;
      return;
    }
    InternalNode* in = AsInternal(node);
    for (int i = 0; i <= in->count; ++i) FreeRec(in->children[i], level - 1);
    delete in;
    --internal_nodes_;
  }

  void CheckRec(const void* node, int level, bool is_root, const K* lo,
                const K* hi, size_t* counted) const {
    if (level == 1) {
      const LeafNode* leaf = AsLeaf(node);
      if (!is_root) VFPS_CHECK(leaf->count >= kMinEntries);
      for (int i = 0; i < leaf->count; ++i) {
        if (i > 0) VFPS_CHECK(leaf->keys[i - 1] < leaf->keys[i]);
        if (lo != nullptr) VFPS_CHECK(!(leaf->keys[i] < *lo));
        if (hi != nullptr) VFPS_CHECK(leaf->keys[i] < *hi);
      }
      *counted += static_cast<size_t>(leaf->count);
      return;
    }
    const InternalNode* in = AsInternal(node);
    if (!is_root) VFPS_CHECK(in->count + 1 >= kMinEntries);
    VFPS_CHECK(in->count >= 1 || is_root);
    for (int i = 1; i < in->count; ++i) {
      VFPS_CHECK(in->keys[i - 1] < in->keys[i]);
    }
    for (int i = 0; i <= in->count; ++i) {
      const K* clo = (i == 0) ? lo : &in->keys[i - 1];
      const K* chi = (i == in->count) ? hi : &in->keys[i];
      CheckRec(in->children[i], level - 1, false, clo, chi, counted);
    }
  }

  void* root_ = nullptr;
  int height_ = 0;  // levels; leaves are level 1
  size_t size_ = 0;
  size_t leaf_nodes_ = 0;
  size_t internal_nodes_ = 0;
};

}  // namespace vfps

#endif  // VFPS_BTREE_BTREE_H_
