file(REMOVE_RECURSE
  "CMakeFiles/vfps_workload.dir/vfps_workload.cc.o"
  "CMakeFiles/vfps_workload.dir/vfps_workload.cc.o.d"
  "vfps_workload"
  "vfps_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfps_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
