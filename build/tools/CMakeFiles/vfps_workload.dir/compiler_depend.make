# Empty compiler generated dependencies file for vfps_workload.
# This may be replaced when dependencies are built.
