file(REMOVE_RECURSE
  "CMakeFiles/vfps_server.dir/vfps_server.cc.o"
  "CMakeFiles/vfps_server.dir/vfps_server.cc.o.d"
  "vfps_server"
  "vfps_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfps_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
