# Empty dependencies file for vfps_server.
# This may be replaced when dependencies are built.
