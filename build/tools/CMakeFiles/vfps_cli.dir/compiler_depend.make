# Empty compiler generated dependencies file for vfps_cli.
# This may be replaced when dependencies are built.
