file(REMOVE_RECURSE
  "CMakeFiles/vfps_cli.dir/vfps_cli.cc.o"
  "CMakeFiles/vfps_cli.dir/vfps_cli.cc.o.d"
  "vfps_cli"
  "vfps_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfps_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
