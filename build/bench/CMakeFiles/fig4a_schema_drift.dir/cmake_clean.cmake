file(REMOVE_RECURSE
  "CMakeFiles/fig4a_schema_drift.dir/fig4a_schema_drift.cc.o"
  "CMakeFiles/fig4a_schema_drift.dir/fig4a_schema_drift.cc.o.d"
  "fig4a_schema_drift"
  "fig4a_schema_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_schema_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
