# Empty compiler generated dependencies file for fig4a_schema_drift.
# This may be replaced when dependencies are built.
