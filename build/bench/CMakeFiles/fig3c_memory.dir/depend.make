# Empty dependencies file for fig3c_memory.
# This may be replaced when dependencies are built.
