file(REMOVE_RECURSE
  "CMakeFiles/fig3c_memory.dir/fig3c_memory.cc.o"
  "CMakeFiles/fig3c_memory.dir/fig3c_memory.cc.o.d"
  "fig3c_memory"
  "fig3c_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
