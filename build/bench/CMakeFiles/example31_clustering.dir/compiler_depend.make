# Empty compiler generated dependencies file for example31_clustering.
# This may be replaced when dependencies are built.
