file(REMOVE_RECURSE
  "CMakeFiles/example31_clustering.dir/example31_clustering.cc.o"
  "CMakeFiles/example31_clustering.dir/example31_clustering.cc.o.d"
  "example31_clustering"
  "example31_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example31_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
