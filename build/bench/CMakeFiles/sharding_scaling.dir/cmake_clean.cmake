file(REMOVE_RECURSE
  "CMakeFiles/sharding_scaling.dir/sharding_scaling.cc.o"
  "CMakeFiles/sharding_scaling.dir/sharding_scaling.cc.o.d"
  "sharding_scaling"
  "sharding_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharding_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
