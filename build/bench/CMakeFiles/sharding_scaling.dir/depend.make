# Empty dependencies file for sharding_scaling.
# This may be replaced when dependencies are built.
