# Empty dependencies file for micro_phase1.
# This may be replaced when dependencies are built.
