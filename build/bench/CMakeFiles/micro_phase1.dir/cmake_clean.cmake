file(REMOVE_RECURSE
  "CMakeFiles/micro_phase1.dir/micro_phase1.cc.o"
  "CMakeFiles/micro_phase1.dir/micro_phase1.cc.o.d"
  "micro_phase1"
  "micro_phase1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_phase1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
