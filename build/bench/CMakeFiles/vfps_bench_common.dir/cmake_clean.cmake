file(REMOVE_RECURSE
  "CMakeFiles/vfps_bench_common.dir/common/harness.cc.o"
  "CMakeFiles/vfps_bench_common.dir/common/harness.cc.o.d"
  "libvfps_bench_common.a"
  "libvfps_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfps_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
