# Empty compiler generated dependencies file for vfps_bench_common.
# This may be replaced when dependencies are built.
