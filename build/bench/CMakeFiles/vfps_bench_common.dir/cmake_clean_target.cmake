file(REMOVE_RECURSE
  "libvfps_bench_common.a"
)
