# Empty compiler generated dependencies file for fig3a_throughput.
# This may be replaced when dependencies are built.
