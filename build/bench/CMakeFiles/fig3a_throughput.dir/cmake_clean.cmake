file(REMOVE_RECURSE
  "CMakeFiles/fig3a_throughput.dir/fig3a_throughput.cc.o"
  "CMakeFiles/fig3a_throughput.dir/fig3a_throughput.cc.o.d"
  "fig3a_throughput"
  "fig3a_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
