file(REMOVE_RECURSE
  "CMakeFiles/micro_cluster.dir/micro_cluster.cc.o"
  "CMakeFiles/micro_cluster.dir/micro_cluster.cc.o.d"
  "micro_cluster"
  "micro_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
