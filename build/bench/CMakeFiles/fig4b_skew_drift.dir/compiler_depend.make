# Empty compiler generated dependencies file for fig4b_skew_drift.
# This may be replaced when dependencies are built.
