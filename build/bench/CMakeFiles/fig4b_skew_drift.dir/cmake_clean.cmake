file(REMOVE_RECURSE
  "CMakeFiles/fig4b_skew_drift.dir/fig4b_skew_drift.cc.o"
  "CMakeFiles/fig4b_skew_drift.dir/fig4b_skew_drift.cc.o.d"
  "fig4b_skew_drift"
  "fig4b_skew_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_skew_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
