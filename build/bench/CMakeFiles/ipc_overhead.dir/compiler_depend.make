# Empty compiler generated dependencies file for ipc_overhead.
# This may be replaced when dependencies are built.
