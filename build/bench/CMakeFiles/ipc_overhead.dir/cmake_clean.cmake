file(REMOVE_RECURSE
  "CMakeFiles/ipc_overhead.dir/ipc_overhead.cc.o"
  "CMakeFiles/ipc_overhead.dir/ipc_overhead.cc.o.d"
  "ipc_overhead"
  "ipc_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
