file(REMOVE_RECURSE
  "CMakeFiles/fig3b_operators.dir/fig3b_operators.cc.o"
  "CMakeFiles/fig3b_operators.dir/fig3b_operators.cc.o.d"
  "fig3b_operators"
  "fig3b_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
