# Empty dependencies file for fig3b_operators.
# This may be replaced when dependencies are built.
