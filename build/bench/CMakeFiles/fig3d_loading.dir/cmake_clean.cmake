file(REMOVE_RECURSE
  "CMakeFiles/fig3d_loading.dir/fig3d_loading.cc.o"
  "CMakeFiles/fig3d_loading.dir/fig3d_loading.cc.o.d"
  "fig3d_loading"
  "fig3d_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3d_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
