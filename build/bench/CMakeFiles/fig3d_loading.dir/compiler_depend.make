# Empty compiler generated dependencies file for fig3d_loading.
# This may be replaced when dependencies are built.
