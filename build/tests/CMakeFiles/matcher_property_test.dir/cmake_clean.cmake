file(REMOVE_RECURSE
  "CMakeFiles/matcher_property_test.dir/matcher_property_test.cc.o"
  "CMakeFiles/matcher_property_test.dir/matcher_property_test.cc.o.d"
  "matcher_property_test"
  "matcher_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcher_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
