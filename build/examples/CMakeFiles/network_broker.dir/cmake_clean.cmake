file(REMOVE_RECURSE
  "CMakeFiles/network_broker.dir/network_broker.cc.o"
  "CMakeFiles/network_broker.dir/network_broker.cc.o.d"
  "network_broker"
  "network_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
