# Empty compiler generated dependencies file for network_broker.
# This may be replaced when dependencies are built.
