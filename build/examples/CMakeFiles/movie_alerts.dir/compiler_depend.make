# Empty compiler generated dependencies file for movie_alerts.
# This may be replaced when dependencies are built.
