file(REMOVE_RECURSE
  "CMakeFiles/movie_alerts.dir/movie_alerts.cc.o"
  "CMakeFiles/movie_alerts.dir/movie_alerts.cc.o.d"
  "movie_alerts"
  "movie_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
