file(REMOVE_RECURSE
  "CMakeFiles/travel_deals.dir/travel_deals.cc.o"
  "CMakeFiles/travel_deals.dir/travel_deals.cc.o.d"
  "travel_deals"
  "travel_deals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_deals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
