# Empty compiler generated dependencies file for travel_deals.
# This may be replaced when dependencies are built.
