file(REMOVE_RECURSE
  "libvfps.a"
)
