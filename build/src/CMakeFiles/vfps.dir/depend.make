# Empty dependencies file for vfps.
# This may be replaced when dependencies are built.
