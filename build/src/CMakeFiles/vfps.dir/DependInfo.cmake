
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/vfps.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/vfps.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/cluster_list.cc" "src/CMakeFiles/vfps.dir/cluster/cluster_list.cc.o" "gcc" "src/CMakeFiles/vfps.dir/cluster/cluster_list.cc.o.d"
  "/root/repo/src/cluster/multi_attr_hash.cc" "src/CMakeFiles/vfps.dir/cluster/multi_attr_hash.cc.o" "gcc" "src/CMakeFiles/vfps.dir/cluster/multi_attr_hash.cc.o.d"
  "/root/repo/src/core/event.cc" "src/CMakeFiles/vfps.dir/core/event.cc.o" "gcc" "src/CMakeFiles/vfps.dir/core/event.cc.o.d"
  "/root/repo/src/core/normalize.cc" "src/CMakeFiles/vfps.dir/core/normalize.cc.o" "gcc" "src/CMakeFiles/vfps.dir/core/normalize.cc.o.d"
  "/root/repo/src/core/predicate.cc" "src/CMakeFiles/vfps.dir/core/predicate.cc.o" "gcc" "src/CMakeFiles/vfps.dir/core/predicate.cc.o.d"
  "/root/repo/src/core/predicate_table.cc" "src/CMakeFiles/vfps.dir/core/predicate_table.cc.o" "gcc" "src/CMakeFiles/vfps.dir/core/predicate_table.cc.o.d"
  "/root/repo/src/core/result_vector.cc" "src/CMakeFiles/vfps.dir/core/result_vector.cc.o" "gcc" "src/CMakeFiles/vfps.dir/core/result_vector.cc.o.d"
  "/root/repo/src/core/schema_registry.cc" "src/CMakeFiles/vfps.dir/core/schema_registry.cc.o" "gcc" "src/CMakeFiles/vfps.dir/core/schema_registry.cc.o.d"
  "/root/repo/src/core/subscription.cc" "src/CMakeFiles/vfps.dir/core/subscription.cc.o" "gcc" "src/CMakeFiles/vfps.dir/core/subscription.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/vfps.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/vfps.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/cost/event_statistics.cc" "src/CMakeFiles/vfps.dir/cost/event_statistics.cc.o" "gcc" "src/CMakeFiles/vfps.dir/cost/event_statistics.cc.o.d"
  "/root/repo/src/cost/greedy_optimizer.cc" "src/CMakeFiles/vfps.dir/cost/greedy_optimizer.cc.o" "gcc" "src/CMakeFiles/vfps.dir/cost/greedy_optimizer.cc.o.d"
  "/root/repo/src/cost/subscription_statistics.cc" "src/CMakeFiles/vfps.dir/cost/subscription_statistics.cc.o" "gcc" "src/CMakeFiles/vfps.dir/cost/subscription_statistics.cc.o.d"
  "/root/repo/src/index/equality_index.cc" "src/CMakeFiles/vfps.dir/index/equality_index.cc.o" "gcc" "src/CMakeFiles/vfps.dir/index/equality_index.cc.o.d"
  "/root/repo/src/index/not_equal_index.cc" "src/CMakeFiles/vfps.dir/index/not_equal_index.cc.o" "gcc" "src/CMakeFiles/vfps.dir/index/not_equal_index.cc.o.d"
  "/root/repo/src/index/predicate_index.cc" "src/CMakeFiles/vfps.dir/index/predicate_index.cc.o" "gcc" "src/CMakeFiles/vfps.dir/index/predicate_index.cc.o.d"
  "/root/repo/src/index/range_index.cc" "src/CMakeFiles/vfps.dir/index/range_index.cc.o" "gcc" "src/CMakeFiles/vfps.dir/index/range_index.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/CMakeFiles/vfps.dir/lang/lexer.cc.o" "gcc" "src/CMakeFiles/vfps.dir/lang/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/CMakeFiles/vfps.dir/lang/parser.cc.o" "gcc" "src/CMakeFiles/vfps.dir/lang/parser.cc.o.d"
  "/root/repo/src/matcher/clustered_base.cc" "src/CMakeFiles/vfps.dir/matcher/clustered_base.cc.o" "gcc" "src/CMakeFiles/vfps.dir/matcher/clustered_base.cc.o.d"
  "/root/repo/src/matcher/counting_matcher.cc" "src/CMakeFiles/vfps.dir/matcher/counting_matcher.cc.o" "gcc" "src/CMakeFiles/vfps.dir/matcher/counting_matcher.cc.o.d"
  "/root/repo/src/matcher/dynamic_matcher.cc" "src/CMakeFiles/vfps.dir/matcher/dynamic_matcher.cc.o" "gcc" "src/CMakeFiles/vfps.dir/matcher/dynamic_matcher.cc.o.d"
  "/root/repo/src/matcher/matcher.cc" "src/CMakeFiles/vfps.dir/matcher/matcher.cc.o" "gcc" "src/CMakeFiles/vfps.dir/matcher/matcher.cc.o.d"
  "/root/repo/src/matcher/naive_matcher.cc" "src/CMakeFiles/vfps.dir/matcher/naive_matcher.cc.o" "gcc" "src/CMakeFiles/vfps.dir/matcher/naive_matcher.cc.o.d"
  "/root/repo/src/matcher/propagation_matcher.cc" "src/CMakeFiles/vfps.dir/matcher/propagation_matcher.cc.o" "gcc" "src/CMakeFiles/vfps.dir/matcher/propagation_matcher.cc.o.d"
  "/root/repo/src/matcher/sharded_matcher.cc" "src/CMakeFiles/vfps.dir/matcher/sharded_matcher.cc.o" "gcc" "src/CMakeFiles/vfps.dir/matcher/sharded_matcher.cc.o.d"
  "/root/repo/src/matcher/static_matcher.cc" "src/CMakeFiles/vfps.dir/matcher/static_matcher.cc.o" "gcc" "src/CMakeFiles/vfps.dir/matcher/static_matcher.cc.o.d"
  "/root/repo/src/matcher/tree_matcher.cc" "src/CMakeFiles/vfps.dir/matcher/tree_matcher.cc.o" "gcc" "src/CMakeFiles/vfps.dir/matcher/tree_matcher.cc.o.d"
  "/root/repo/src/net/client.cc" "src/CMakeFiles/vfps.dir/net/client.cc.o" "gcc" "src/CMakeFiles/vfps.dir/net/client.cc.o.d"
  "/root/repo/src/net/protocol.cc" "src/CMakeFiles/vfps.dir/net/protocol.cc.o" "gcc" "src/CMakeFiles/vfps.dir/net/protocol.cc.o.d"
  "/root/repo/src/net/server.cc" "src/CMakeFiles/vfps.dir/net/server.cc.o" "gcc" "src/CMakeFiles/vfps.dir/net/server.cc.o.d"
  "/root/repo/src/pubsub/broker.cc" "src/CMakeFiles/vfps.dir/pubsub/broker.cc.o" "gcc" "src/CMakeFiles/vfps.dir/pubsub/broker.cc.o.d"
  "/root/repo/src/pubsub/event_store.cc" "src/CMakeFiles/vfps.dir/pubsub/event_store.cc.o" "gcc" "src/CMakeFiles/vfps.dir/pubsub/event_store.cc.o.d"
  "/root/repo/src/util/arena.cc" "src/CMakeFiles/vfps.dir/util/arena.cc.o" "gcc" "src/CMakeFiles/vfps.dir/util/arena.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/vfps.dir/util/status.cc.o" "gcc" "src/CMakeFiles/vfps.dir/util/status.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/vfps.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/vfps.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/workload_generator.cc" "src/CMakeFiles/vfps.dir/workload/workload_generator.cc.o" "gcc" "src/CMakeFiles/vfps.dir/workload/workload_generator.cc.o.d"
  "/root/repo/src/workload/workload_spec.cc" "src/CMakeFiles/vfps.dir/workload/workload_spec.cc.o" "gcc" "src/CMakeFiles/vfps.dir/workload/workload_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
